//! [`SecureRcEndpoint`]: one side of a reliable connection, wiring the
//! [`crate::qp::RcQp`] state machine to an [`ib_security::SecureChannel`].
//!
//! ## Verbs
//!
//! The endpoint speaks three verb families, all MTU-segmented by the QP
//! ([`crate::qp`]) and reassembled here:
//!
//! * **SEND** — [`Self::post`]: delivered to the peer's receive queue
//!   ([`Self::take_delivered`]), one receive-buffer slot per message.
//! * **RDMA WRITE** — [`Self::post_write`]: lands directly in the peer's
//!   registered memory region ([`Self::configure_memory`]) after an
//!   R_Key + bounds check; completion surfaces via
//!   [`Self::take_write_events`]. The RETH rides the First/Only segment
//!   and — because the ICRC mask leaves extended transport headers
//!   untouched — is covered by the MAC: a flipped address or R_Key fails
//!   verification before any memory is touched.
//! * **RDMA READ** — [`Self::post_read`]: the responder serves the
//!   request from its memory region as segmented ReadResponse packets
//!   (in this model: sent in the responder's own send PSN space and
//!   acknowledged like data, a simplification of IBA's
//!   responses-consume-request-PSNs rule); the requester matches
//!   completed responses FIFO against its outstanding requests
//!   ([`Self::take_read_completions`]) — sound because RC delivery is
//!   in order.
//!
//! ## Ordering discipline (who judges what, and in what order)
//!
//! The replay window's bitmap must stay strictly in **delivery order** or
//! its verdicts stop meaning "was this PSN delivered?". The endpoint
//! therefore classifies every data packet against the transport's
//! expected PSN *before* the channel sees it:
//!
//! * **Ahead** of expected → a gap. Under go-back-N: NAK and drop
//!   *without* touching the replay window. If the window recorded the
//!   packet now, the in-order retransmit that go-back-N is about to
//!   produce would read as a duplicate and the message would never be
//!   delivered. Under selective repeat the sender will *not* resend
//!   what the NAK did not name, so an in-window ahead packet is admitted
//!   through the replay window immediately and buffered; when the gap
//!   heals, buffered segments apply **without** a second admission.
//! * **In order** → check receive-buffer budget first for SEND segments
//!   (an RNR'd packet must not be recorded either — it was not
//!   delivered), then [`SecureChannel::admit`]: `Fresh` applies the
//!   segment, and only then does the window remember the PSN.
//! * **Behind** expected → some already-received PSN. The transport
//!   re-ACKs (cumulative ACKs are idempotent; a sender whose ACK was
//!   lost needs this), but **delivery** is the channel's call. With the
//!   replay window the verdict is `Duplicate` — suppressed. Without it
//!   the packet verifies and walks in as `Fresh`: that admission is the
//!   §7 vulnerability, counted in [`EndpointStats::dup_admitted_fresh`].
//!
//! Why not let the transport's expected-PSN comparison do the
//! suppressing? Because it is not a security boundary: the PSN ring is
//! 24 bits, so over a connection's lifetime a captured packet's PSN
//! comes back around and classifies as Ahead or InOrder again, and the
//! half-ring Behind test cannot distinguish "delivered long ago" from
//! "never existed". The replay window's bounded, delivered-vs-lost
//! bitmap is the sound mechanism; the experiment measures exactly what
//! happens when it is absent.
//!
//! ## ACKs are verified but not windowed
//!
//! Acknowledgment packets pass [`SecureChannel::verify_only`] — MAC
//! checked, replay window untouched. A replayed cumulative ACK is
//! idempotent (it acknowledges a prefix the sender already advanced
//! past), and ACK PSNs live in the *data* sequence space, so feeding
//! them to the data window would poison it. Read *responses* carry an
//! AETH too but are data: dispatch is by opcode, not header presence.
//!
//! ## Zero-allocation send path
//!
//! Data and ACK packets are not rebuilt per send. The endpoint keeps two
//! sealed packet *templates* (`tx_pkt`, `ack_pkt`); each transmission
//! only rewrites the operation, PSN, optional RETH/AETH (all `Copy`) and
//! payload, re-runs [`Packet::seal_lengths`] and the channel seal, and
//! serializes with [`Packet::write_into`] into a wire buffer drawn from
//! a bounded recycle pool. Once the template payload capacity and the
//! pool are warm, [`SecureRcEndpoint::poll_into`] performs no heap
//! allocation.

use std::collections::{HashMap, VecDeque};

use ib_mgmt::keymgmt::{KeyEpoch, SecretKey};
use ib_packet::types::{Lid, PKey, Psn, Qpn, RKey};
use ib_packet::{Aeth, AethKind, NakCode, OpCode, Operation, Packet, PacketBuilder, Reth};
use ib_security::{Admit, ChannelError, ChannelSecurity, SecureChannel};
use ib_sim::SimTime;

use crate::config::{RcConfig, RetransmitMode};
use crate::qp::{psn_sub, RcQp, RxClass, RxReply};

/// RNR timer code placed in the AETH (the 5-bit IBA encoding is a table
/// lookup; both ends of this connection share an [`RcConfig`], so the
/// code is advisory and the sender backs off by `cfg.rnr_timer`).
const RNR_TIMER_CODE: u8 = 0;

/// Upper bound on pooled wire buffers; excess recycles are dropped so a
/// burst cannot pin memory forever.
const POOL_CAP: usize = 64;

/// Per-endpoint transport/security counters (the fig_replay metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// SEND messages delivered to the application for the first time.
    pub delivered: u64,
    /// Behind-expected packets the channel suppressed as duplicates
    /// (lost-ACK retransmits and attacker replays alike).
    pub dup_suppressed: u64,
    /// Behind-expected packets the channel admitted as `Fresh` — already
    /// -received data delivered *again*. Zero whenever the replay window
    /// is on; the replay-attack success count when it is off.
    pub dup_admitted_fresh: u64,
    /// Ahead-of-expected packets dropped (go-back-N gaps).
    pub gap_drops: u64,
    /// Ahead-of-expected packets buffered out of order (selective repeat).
    pub ooo_buffered: u64,
    /// Wire buffers that failed to parse (corruption caught by the VCRC).
    pub parse_drops: u64,
    /// ACK/NAK/RNR packets processed.
    pub acks_rx: u64,
    /// RNR NAKs sent because the receive buffer was full.
    pub rnr_sent: u64,
    /// RDMA ops refused: R_Key mismatch, out-of-bounds address range, or
    /// a Middle/Last segment with no open transaction.
    pub rdma_faults: u64,
    /// RDMA READ requests served from the memory region.
    pub reads_served: u64,
}

/// An in-progress multi-segment RDMA WRITE on the responder side.
#[derive(Debug, Clone, Copy)]
struct WriteProgress {
    addr: u64,
    dma_len: u32,
    written: usize,
}

/// A selective-repeat segment buffered ahead of the expected PSN. It was
/// already admitted through the replay window when it arrived.
#[derive(Debug)]
struct StoredSeg {
    op: Operation,
    reth: Option<Reth>,
    payload: Vec<u8>,
}

/// One side of a secure reliable connection: post messages, shuttle wire
/// buffers, take delivered messages / RDMA completions.
pub struct SecureRcEndpoint {
    channel: SecureChannel,
    qp: RcQp,
    /// Sealed data-packet template: addressing fixed at construction;
    /// operation / PSN / RETH / payload change per send.
    tx_pkt: Packet,
    /// Sealed ACK/NAK/RNR template: only PSN / AETH / seal change.
    ack_pkt: Packet,
    /// Recycled wire buffers (see [`Self::recycle`]).
    pool: Vec<Vec<u8>>,
    outbox: VecDeque<Vec<u8>>,
    delivered: VecDeque<Vec<u8>>,
    /// SEND reassembly buffer (First/Middle accumulate here).
    rx_msg: Vec<u8>,
    /// Open multi-segment WRITE, if any.
    rx_write: Option<WriteProgress>,
    /// READ-response reassembly buffer.
    rx_read_resp: Vec<u8>,
    /// Completed READ payloads, FIFO-matched to outstanding requests.
    completed_reads: VecDeque<Vec<u8>>,
    /// Completed inbound WRITEs as (virt_addr, length) events.
    write_events: VecDeque<(u64, u32)>,
    /// Registered memory region RDMA ops target.
    memory: Vec<u8>,
    /// The R_Key that unlocks `memory`; `None` refuses all RDMA.
    rkey: Option<RKey>,
    /// Selective repeat: segments received ahead of the expected PSN,
    /// keyed by PSN, already past the replay window.
    ooo: HashMap<u32, StoredSeg>,
    /// Reused parsed-packet pool for [`Self::poll_batch`] (payload
    /// allocations live across calls).
    rx_batch: Vec<Packet>,
    /// Reused integrity-verdict scratch for [`Self::poll_batch`].
    rx_verdicts: Vec<Result<(), ChannelError>>,
    /// Transport/security counters, readable at any time.
    pub stats: EndpointStats,
}

impl SecureRcEndpoint {
    /// Build an endpoint. `replay_window` is the channel's window depth
    /// under [`ChannelSecurity::AuthReplay`].
    ///
    /// # Panics
    ///
    /// If the transport send window exceeds the replay window: a genuine
    /// retransmit could then age out of the window and be rejected as
    /// stale, breaking reliable delivery. (The same bound makes
    /// selective repeat's ahead-of-order admissions safe: an in-window
    /// ahead PSN never pushes the missing PSN out of the replay window.)
    #[allow(clippy::too_many_arguments)] // a connection is genuinely this wide
    pub fn new(
        security: ChannelSecurity,
        pkey: PKey,
        secret: SecretKey,
        replay_window: u32,
        cfg: RcConfig,
        lid: Lid,
        peer_lid: Lid,
        qpn: Qpn,
    ) -> Self {
        let channel = SecureChannel::new(security, pkey, secret, replay_window);
        if let Some(depth) = channel.window_depth() {
            assert!(
                cfg.window <= depth,
                "send window {} exceeds replay window {depth}: retransmits could go stale",
                cfg.window
            );
        }
        let tx_pkt = PacketBuilder::new(OpCode::RC_SEND_ONLY)
            .slid(lid)
            .dlid(peer_lid)
            .pkey(pkey)
            .dest_qp(qpn)
            .psn(Psn(0))
            .build();
        let ack_pkt = PacketBuilder::new(OpCode::RC_ACKNOWLEDGE)
            .slid(lid)
            .dlid(peer_lid)
            .pkey(pkey)
            .dest_qp(qpn)
            .psn(Psn(0))
            .ack(0, 0)
            .build();
        SecureRcEndpoint {
            channel,
            qp: RcQp::new(cfg),
            tx_pkt,
            ack_pkt,
            pool: Vec::new(),
            outbox: VecDeque::new(),
            delivered: VecDeque::new(),
            rx_msg: Vec::new(),
            rx_write: None,
            rx_read_resp: Vec::new(),
            completed_reads: VecDeque::new(),
            write_events: VecDeque::new(),
            memory: Vec::new(),
            rkey: None,
            ooo: HashMap::new(),
            rx_batch: Vec::new(),
            rx_verdicts: Vec::new(),
            stats: EndpointStats::default(),
        }
    }

    /// Register `size` bytes of zeroed memory reachable by RDMA under
    /// `rkey`. Until this is called every inbound RDMA op faults.
    pub fn configure_memory(&mut self, size: usize, rkey: RKey) {
        self.memory = vec![0; size];
        self.rkey = Some(rkey);
    }

    /// The registered memory region (what RDMA WRITEs landed).
    pub fn memory(&self) -> &[u8] {
        &self.memory
    }

    /// Mutable view of the memory region (pre-filling READ sources).
    pub fn memory_mut(&mut self) -> &mut [u8] {
        &mut self.memory
    }

    /// Queue a SEND message for reliable, authenticated delivery to the
    /// peer's receive queue.
    pub fn post(&mut self, payload: Vec<u8>) {
        self.qp.post_send(payload);
    }

    /// Queue an RDMA WRITE of `payload` into the peer's memory at
    /// `virt_addr` under `rkey`.
    pub fn post_write(&mut self, virt_addr: u64, rkey: RKey, payload: Vec<u8>) {
        self.qp.post_write(virt_addr, rkey, payload);
    }

    /// Queue an RDMA READ of `len` bytes from the peer's memory at
    /// `virt_addr` under `rkey`. The completed payload surfaces via
    /// [`Self::take_read_completions`].
    pub fn post_read(&mut self, virt_addr: u64, rkey: RKey, len: u32) {
        self.qp.post_read(virt_addr, rkey, len);
    }

    /// True when every posted message has been sent and acknowledged.
    pub fn tx_idle(&self) -> bool {
        self.qp.tx_idle()
    }

    /// True when the sender exhausted its retries (QP error state).
    pub fn failed(&self) -> bool {
        self.qp.is_dead()
    }

    /// Total retransmissions performed by this endpoint's sender half.
    pub fn retransmits(&self) -> u64 {
        self.qp.retransmits
    }

    /// The security channel (for its admission counters).
    pub fn channel(&self) -> &SecureChannel {
        &self.channel
    }

    /// Configure how long a superseded key epoch keeps verifying after
    /// its successor is installed (see [`SecureChannel::set_epoch_grace`]).
    pub fn set_epoch_grace(&mut self, grace: SimTime) {
        self.channel.set_epoch_grace(grace);
    }

    /// Install a key version learned from the SM's key-update MAD: the
    /// next [`Self::poll_into`] seals (and re-seals retransmits) under the
    /// newest epoch, while inbound traffic under older epochs keeps
    /// verifying until the grace window runs out.
    pub fn install_epoch(&mut self, now: SimTime, epoch: KeyEpoch, secret: SecretKey) {
        self.channel.install_epoch(now, epoch, secret);
    }

    /// Messages fully received in order (the receiver half's MSN).
    pub fn rx_msn(&self) -> u32 {
        self.qp.msn()
    }

    /// Earliest instant this endpoint needs a timer wake-up.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.qp.next_deadline()
    }

    /// Drain SEND messages delivered since the last call, releasing
    /// their receive-buffer slots.
    pub fn take_delivered(&mut self) -> Vec<Vec<u8>> {
        let out: Vec<Vec<u8>> = self.delivered.drain(..).collect();
        for _ in &out {
            self.qp.rx_release();
        }
        out
    }

    /// Drain completed RDMA READ payloads, in request order.
    pub fn take_read_completions(&mut self) -> Vec<Vec<u8>> {
        self.completed_reads.drain(..).collect()
    }

    /// Drain completed inbound RDMA WRITEs as (virt_addr, len) events.
    pub fn take_write_events(&mut self) -> Vec<(u64, u32)> {
        self.write_events.drain(..).collect()
    }

    /// Run timers and collect every wire buffer this endpoint wants to
    /// transmit now: queued ACK traffic first, then window-permitted data.
    ///
    /// Allocating convenience wrapper over [`Self::poll_into`].
    pub fn poll(&mut self, now: SimTime) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        self.poll_into(now, &mut out);
        out
    }

    /// [`Self::poll`], appending into a caller-owned buffer list. Wire
    /// buffers come from the recycle pool when available; with a warm
    /// pool and warm templates this performs no heap allocation.
    pub fn poll_into(&mut self, now: SimTime, out: &mut Vec<Vec<u8>>) {
        // Retire key epochs whose rotation grace window has expired.
        self.channel.advance_time(now);
        // Retransmission timer: a rewind makes poll_tx below re-emit.
        self.qp.on_timeout(now);
        // Delayed-ACK timer.
        if let Some(reply) = self.qp.poll_ack(now) {
            self.queue_reply(reply);
        }
        out.extend(self.outbox.drain(..));
        // Destructure: `poll_tx`'s borrow of `qp` must coexist with the
        // template, channel, and pool.
        let Self {
            qp,
            channel,
            tx_pkt,
            pool,
            ..
        } = self;
        while let Some(item) = qp.poll_tx(now) {
            // Opcode + optional headers move in lockstep so serialization
            // (Option-driven) matches what a parser (opcode-driven) will
            // reconstruct. All header writes are `Copy` — no allocation.
            tx_pkt.bth.opcode.operation = item.op;
            tx_pkt.bth.psn = Psn(item.psn);
            tx_pkt.reth = item.reth;
            // Read responses carry a structurally-required AETH; its
            // syndrome is decorative here (dispatch is by opcode).
            tx_pkt.aeth = if item.op.has_aeth() {
                Some(Aeth::ack(0))
            } else {
                None
            };
            tx_pkt.payload.clear();
            tx_pkt.payload.extend_from_slice(&item.payload);
            tx_pkt.seal_lengths();
            // A retransmit rebuilds byte-identical content under the
            // original PSN, so the seal produces the identical nonce and
            // tag: on the wire it is indistinguishable from an attacker's
            // replay.
            channel
                .seal(tx_pkt)
                .expect("partition secret installed at construction");
            let mut buf = pool.pop().unwrap_or_default();
            tx_pkt.write_into(&mut buf);
            out.push(buf);
        }
    }

    /// Hand a spent wire buffer back for reuse by a future send. The pool
    /// is bounded by [`POOL_CAP`]; excess buffers are simply freed.
    pub fn recycle(&mut self, mut buf: Vec<u8>) {
        if self.pool.len() < POOL_CAP {
            buf.clear();
            self.pool.push(buf);
        }
    }

    /// Process one arriving wire buffer.
    pub fn handle_wire(&mut self, now: SimTime, bytes: &[u8]) {
        self.channel.advance_time(now);
        let Ok(packet) = Packet::parse(bytes) else {
            self.stats.parse_drops += 1;
            return;
        };
        let pre = self.channel.precheck(&packet);
        self.dispatch(now, &packet, pre);
    }

    /// Process a batch of arriving wire buffers, then collect outbound
    /// traffic — the one-dispatch receive path. All buffers are parsed
    /// into a reused packet pool, the whole batch's integrity (VCRC +
    /// MAC) is pre-verified through the channel's multi-buffer kernels,
    /// and then the exact per-packet receive state machine runs in
    /// arrival order, so verdicts, stats, and replies are identical to
    /// calling [`Self::handle_wire`] per buffer followed by
    /// [`Self::poll_into`]. With warm pools, steady state allocates
    /// nothing.
    pub fn poll_batch(&mut self, now: SimTime, inbound: &[&[u8]], out: &mut Vec<Vec<u8>>) {
        self.channel.advance_time(now);
        let mut parsed = std::mem::take(&mut self.rx_batch);
        let mut verdicts = std::mem::take(&mut self.rx_verdicts);
        let mut n = 0;
        for bytes in inbound {
            if n == parsed.len() {
                // Pool growth: a fresh reusable packet shell.
                parsed.push(PacketBuilder::new(OpCode::RC_ACKNOWLEDGE).ack(0, 0).build());
            }
            match parsed[n].parse_into(bytes) {
                Ok(()) => n += 1,
                Err(_) => self.stats.parse_drops += 1,
            }
        }
        // Whole-batch integrity pre-pass (uncounted): the MAC work happens
        // here, four packets per dispatch where the kernels allow.
        self.channel.precheck_batch(&parsed[..n], &mut verdicts);
        for (packet, pre) in parsed[..n].iter().zip(&verdicts) {
            self.dispatch(now, packet, *pre);
        }
        self.rx_batch = parsed;
        self.rx_verdicts = verdicts;
        self.poll_into(now, out);
    }

    /// Route one parsed packet (with its uncounted integrity verdict) to
    /// the ACK or data state machine. Dispatch is by opcode, not AETH
    /// presence: read responses carry an AETH yet their PSNs live in the
    /// peer's *data* sequence space.
    fn dispatch(&mut self, now: SimTime, packet: &Packet, pre: Result<(), ChannelError>) {
        if packet.bth.opcode.operation == Operation::Acknowledge {
            self.handle_ack(now, packet, pre);
        } else {
            self.handle_data(now, packet, pre);
        }
    }

    fn handle_ack(&mut self, now: SimTime, packet: &Packet, pre: Result<(), ChannelError>) {
        if self.channel.verify_only_prechecked(pre).is_err() {
            return; // forged or corrupted ACK: counted in channel stats
        }
        let Some(kind) = packet.aeth.as_ref().and_then(Aeth::kind) else {
            self.stats.parse_drops += 1; // reserved syndrome encoding
            return;
        };
        self.stats.acks_rx += 1;
        let psn = packet.bth.psn.0;
        match kind {
            AethKind::Ack { .. } => self.qp.on_ack(now, psn),
            AethKind::Nak(NakCode::PsnSequenceError) => self.qp.on_nak(now, psn),
            // The fatal NAK classes put a real QP in the error state; this
            // transport never generates them, so treat as unhandled.
            AethKind::Nak(_) => {}
            AethKind::Rnr { .. } => {
                let delay = self.qp.config().rnr_timer;
                self.qp.on_rnr(now, psn, delay);
            }
        }
    }

    fn handle_data(&mut self, now: SimTime, packet: &Packet, pre: Result<(), ChannelError>) {
        let psn = packet.bth.psn.0;
        let op = packet.bth.opcode.operation;
        match self.qp.rx_classify(psn) {
            RxClass::Ahead => {
                let cfg = self.qp.config();
                let in_window = psn_sub(psn, self.qp.expected_psn()) < cfg.window;
                if cfg.retransmit == RetransmitMode::SelectiveRepeat && in_window {
                    // The sender will NOT resend this PSN (the NAK names
                    // only the missing one), so record it in the replay
                    // window now and buffer the segment for the drain.
                    match self.channel.admit_prechecked(packet, pre) {
                        Ok(Admit::Fresh) => {
                            self.stats.ooo_buffered += 1;
                            self.ooo.insert(
                                psn,
                                StoredSeg {
                                    op,
                                    reth: packet.reth,
                                    payload: packet.payload.clone(),
                                },
                            );
                        }
                        Ok(Admit::Duplicate) => self.stats.dup_suppressed += 1,
                        Err(_) => {}
                    }
                } else {
                    // Go-back-N gap: never shown to the replay window (see
                    // module docs) — the in-order retransmit must stay
                    // judgeable as Fresh.
                    self.stats.gap_drops += 1;
                }
                if let Some(reply) = self.qp.rx_gap() {
                    self.queue_reply(reply);
                }
            }
            RxClass::InOrder => {
                let is_send = matches!(
                    op,
                    Operation::SendFirst
                        | Operation::SendMiddle
                        | Operation::SendLast
                        | Operation::SendOnly
                );
                if is_send && !self.qp.rx_has_budget() {
                    // Not deliverable, so not recorded: the retransmit
                    // after the RNR back-off must still verdict Fresh.
                    // RDMA ops bypass receive buffers entirely.
                    self.stats.rnr_sent += 1;
                    let reply = self.qp.rx_not_ready();
                    self.queue_reply(reply);
                    return;
                }
                match self.channel.admit_prechecked(packet, pre) {
                    Ok(Admit::Fresh) => {
                        self.accept_and_drain(now, op, packet.reth, packet.payload.clone());
                    }
                    Ok(Admit::Duplicate) => {
                        // The window saw this PSN although the transport
                        // did not: advance past it without re-applying.
                        self.stats.dup_suppressed += 1;
                        if let Some(reply) = self.qp.rx_accept(now, msg_end_of(op)) {
                            self.queue_reply(reply);
                        }
                    }
                    Err(_) => {} // counted in channel stats
                }
            }
            RxClass::Behind => {
                match self.channel.admit_prechecked(packet, pre) {
                    Ok(Admit::Fresh) => {
                        // No replay window to remember the delivery: an
                        // already-received packet is accepted AGAIN. This
                        // is the replay attack succeeding.
                        self.stats.dup_admitted_fresh += 1;
                        if op == Operation::SendOnly {
                            self.qp.rx_reserve();
                            self.delivered.push_back(packet.payload.clone());
                        }
                        // Replayed segments of multi-packet messages and
                        // RDMA ops are counted but not re-applied: the
                        // admission itself is the measured failure.
                        let reply = self.qp.rx_duplicate();
                        self.queue_reply(reply);
                    }
                    Ok(Admit::Duplicate) => {
                        // Lost-ACK retransmit or attacker replay — either
                        // way: suppress, re-ACK so the sender moves on.
                        self.stats.dup_suppressed += 1;
                        let reply = self.qp.rx_duplicate();
                        self.queue_reply(reply);
                    }
                    Err(_) => {}
                }
            }
        }
    }

    /// Apply a freshly-admitted in-order segment, then drain any
    /// selective-repeat buffered successors that are now in order (they
    /// were admitted through the replay window when they arrived — no
    /// second admission).
    fn accept_and_drain(
        &mut self,
        now: SimTime,
        op: Operation,
        reth: Option<Reth>,
        payload: Vec<u8>,
    ) {
        if let Some(reply) = self.apply_segment(now, op, reth, payload) {
            self.queue_reply(reply);
        }
        while let Some(seg) = self.ooo.remove(&self.qp.expected_psn()) {
            if let Some(reply) = self.apply_segment(now, seg.op, seg.reth, seg.payload) {
                self.queue_reply(reply);
            }
        }
        // Segments still buffered beyond a second loss: ask for the new
        // expected PSN right away instead of waiting for the sender's RTO
        // (rx_accept cleared the per-gap NAK latch).
        if !self.ooo.is_empty() {
            if let Some(reply) = self.qp.rx_gap() {
                self.queue_reply(reply);
            }
        }
    }

    /// Verb-specific effect of one in-order segment, then the transport
    /// accept (PSN advance, MSN on message end, ACK coalescing).
    fn apply_segment(
        &mut self,
        now: SimTime,
        op: Operation,
        reth: Option<Reth>,
        payload: Vec<u8>,
    ) -> Option<RxReply> {
        match op {
            Operation::SendOnly => {
                self.qp.rx_reserve();
                self.delivered.push_back(payload);
                self.stats.delivered += 1;
            }
            Operation::SendFirst => {
                self.rx_msg.clear();
                self.rx_msg.extend_from_slice(&payload);
            }
            Operation::SendMiddle => {
                self.rx_msg.extend_from_slice(&payload);
            }
            Operation::SendLast => {
                self.rx_msg.extend_from_slice(&payload);
                self.qp.rx_reserve();
                self.delivered.push_back(std::mem::take(&mut self.rx_msg));
                self.stats.delivered += 1;
            }
            Operation::RdmaWriteOnly => {
                if let Some(reth) = reth {
                    self.write_start(reth, &payload, true);
                }
            }
            Operation::RdmaWriteFirst => {
                if let Some(reth) = reth {
                    self.write_start(reth, &payload, false);
                }
            }
            Operation::RdmaWriteMiddle => self.write_continue(&payload, false),
            Operation::RdmaWriteLast => self.write_continue(&payload, true),
            Operation::RdmaReadRequest => {
                if let Some(reth) = reth {
                    self.serve_read(reth);
                }
            }
            Operation::RdmaReadResponseOnly => {
                self.completed_reads.push_back(payload);
            }
            Operation::RdmaReadResponseFirst => {
                self.rx_read_resp.clear();
                self.rx_read_resp.extend_from_slice(&payload);
            }
            Operation::RdmaReadResponseMiddle => {
                self.rx_read_resp.extend_from_slice(&payload);
            }
            Operation::RdmaReadResponseLast => {
                self.rx_read_resp.extend_from_slice(&payload);
                self.completed_reads
                    .push_back(std::mem::take(&mut self.rx_read_resp));
            }
            Operation::Acknowledge => unreachable!("dispatched to handle_ack"),
        }
        self.qp.rx_accept(now, msg_end_of(op))
    }

    /// Validate and begin (or complete, for Only) an inbound RDMA WRITE.
    /// The R_Key and bounds are checked against the registered region;
    /// a refused op still advances the PSN — IBA would move the QP to an
    /// error state, here we count the fault and keep the flow alive.
    fn write_start(&mut self, reth: Reth, payload: &[u8], only: bool) {
        let addr = reth.virt_addr as usize;
        let valid = self.rkey == Some(reth.rkey)
            && addr
                .checked_add(reth.dma_len as usize)
                .is_some_and(|end| end <= self.memory.len())
            && payload.len() <= reth.dma_len as usize;
        if !valid {
            self.stats.rdma_faults += 1;
            self.rx_write = None;
            return;
        }
        self.memory[addr..addr + payload.len()].copy_from_slice(payload);
        if only {
            self.write_events.push_back((reth.virt_addr, reth.dma_len));
        } else {
            self.rx_write = Some(WriteProgress {
                addr: reth.virt_addr,
                dma_len: reth.dma_len,
                written: payload.len(),
            });
        }
    }

    /// Continue (Middle) or finish (Last) the open multi-segment WRITE.
    fn write_continue(&mut self, payload: &[u8], last: bool) {
        let Some(w) = self.rx_write else {
            self.stats.rdma_faults += 1; // no transaction open
            return;
        };
        let off = w.addr as usize + w.written;
        if w.written + payload.len() > w.dma_len as usize || off + payload.len() > self.memory.len()
        {
            self.stats.rdma_faults += 1;
            self.rx_write = None;
            return;
        }
        self.memory[off..off + payload.len()].copy_from_slice(payload);
        let written = w.written + payload.len();
        if last {
            self.rx_write = None;
            self.write_events.push_back((w.addr, written as u32));
        } else {
            self.rx_write = Some(WriteProgress { written, ..w });
        }
    }

    /// Serve an RDMA READ request from the memory region: the response
    /// data is posted on our send side as segmented ReadResponse packets.
    fn serve_read(&mut self, reth: Reth) {
        let addr = reth.virt_addr as usize;
        let valid = self.rkey == Some(reth.rkey)
            && addr
                .checked_add(reth.dma_len as usize)
                .is_some_and(|end| end <= self.memory.len());
        if !valid {
            self.stats.rdma_faults += 1;
            return;
        }
        self.stats.reads_served += 1;
        let data = self.memory[addr..addr + reth.dma_len as usize].to_vec();
        self.qp.post_read_response(data);
    }

    fn queue_reply(&mut self, reply: RxReply) {
        let (psn, aeth) = match reply {
            RxReply::Ack { psn, msn } => (psn, Aeth::ack(msn)),
            RxReply::Nak { psn, msn } => (psn, Aeth::nak(NakCode::PsnSequenceError, msn)),
            RxReply::Rnr { psn, msn } => (psn, Aeth::rnr(RNR_TIMER_CODE, msn)),
        };
        self.ack_pkt.bth.psn = Psn(psn);
        *self
            .ack_pkt
            .aeth
            .as_mut()
            .expect("ACK template carries AETH") = aeth;
        self.channel
            .seal(&mut self.ack_pkt)
            .expect("partition secret installed at construction");
        let mut buf = self.pool.pop().unwrap_or_default();
        self.ack_pkt.write_into(&mut buf);
        self.outbox.push_back(buf);
    }
}

/// True when `op` completes a message — the segments that advance MSN.
fn msg_end_of(op: Operation) -> bool {
    matches!(
        op,
        Operation::SendOnly
            | Operation::SendLast
            | Operation::RdmaWriteOnly
            | Operation::RdmaWriteLast
            | Operation::RdmaReadRequest
            | Operation::RdmaReadResponseOnly
            | Operation::RdmaReadResponseLast
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_sim::time::US;

    const PKEY: PKey = PKey(0x8001);

    fn pair(security: ChannelSecurity, cfg: RcConfig) -> (SecureRcEndpoint, SecureRcEndpoint) {
        let secret = SecretKey::from_seed(99);
        let a = SecureRcEndpoint::new(security, PKEY, secret, 64, cfg, Lid(1), Lid(2), Qpn(7));
        let b = SecureRcEndpoint::new(security, PKEY, secret, 64, cfg, Lid(2), Lid(1), Qpn(7));
        (a, b)
    }

    /// Shuttle wire buffers both ways until neither side has anything to
    /// say, advancing time to the earliest pending deadline when idle.
    fn pump(a: &mut SecureRcEndpoint, b: &mut SecureRcEndpoint, start: SimTime) -> SimTime {
        let mut now = start;
        for _ in 0..10_000 {
            let a_out = a.poll(now);
            let b_out = b.poll(now);
            if a_out.is_empty() && b_out.is_empty() {
                // Nothing on the wire: jump to the earliest timer, or stop
                // when no timer is armed either.
                match a.next_deadline().into_iter().chain(b.next_deadline()).min() {
                    Some(next) => {
                        now = next;
                        continue;
                    }
                    None => return now,
                }
            }
            for bytes in a_out {
                b.handle_wire(now, &bytes);
            }
            for bytes in b_out {
                a.handle_wire(now, &bytes);
            }
            now += US;
            if a.tx_idle()
                && b.tx_idle()
                && a.next_deadline().is_none()
                && b.next_deadline().is_none()
            {
                return now;
            }
        }
        panic!("pump did not converge");
    }

    #[test]
    fn lossless_delivery_all_arms() {
        for arm in ChannelSecurity::ALL {
            let (mut a, mut b) = pair(arm, RcConfig::default());
            for i in 0..20u8 {
                a.post(vec![i; 32]);
            }
            pump(&mut a, &mut b, 0);
            let got = b.take_delivered();
            assert_eq!(got.len(), 20, "{arm:?}");
            assert!(got.iter().enumerate().all(|(i, m)| m[0] == i as u8));
            assert!(a.tx_idle());
            assert_eq!(b.stats.dup_admitted_fresh, 0);
        }
    }

    #[test]
    fn multi_segment_send_reassembles() {
        let (mut a, mut b) = pair(ChannelSecurity::AuthReplay, RcConfig::default());
        let mtu = RcConfig::default().mtu;
        let msg: Vec<u8> = (0..mtu * 3 + 17).map(|i| (i * 7) as u8).collect();
        a.post(msg.clone());
        pump(&mut a, &mut b, 0);
        assert_eq!(b.take_delivered(), vec![msg]);
        assert_eq!(b.stats.delivered, 1);
        assert_eq!(b.rx_msn(), 1, "four segments, one MSN");
    }

    /// The batch receive path must be observationally identical to the
    /// sequential one: one connection pumped with `handle_wire`+`poll`,
    /// a twin pumped with `poll_batch`, same traffic (including drops,
    /// replays, and corruption) — same deliveries, stats, and channel
    /// counters at the end.
    #[test]
    fn poll_batch_matches_sequential_handling() {
        for arm in ChannelSecurity::ALL {
            let (mut a_seq, mut b_seq) = pair(arm, RcConfig::default());
            let (mut a_bat, mut b_bat) = pair(arm, RcConfig::default());
            let mtu = RcConfig::default().mtu;
            for ep in [&mut a_seq, &mut a_bat] {
                ep.post((0..mtu * 2 + 5).map(|i| (i * 3) as u8).collect());
                ep.post(vec![0x42; 64]);
                ep.post(vec![0x43; 900]);
            }
            // Uniform round: feed pending b→a traffic and poll the sender,
            // mangle its output, feed that to the receiver and poll it —
            // so one poll_batch call mirrors handle_wire* + poll exactly.
            let mangle = |round: usize, wire: &[Vec<u8>]| -> Vec<Vec<u8>> {
                match round {
                    1 => wire.iter().skip(1).cloned().collect(), // drop one
                    2 => wire
                        .iter()
                        .cloned()
                        .chain(wire.first().cloned()) // replay one
                        .collect(),
                    3 => wire
                        .iter()
                        .cloned()
                        .map(|mut b| {
                            if let Some(x) = b.get_mut(20) {
                                *x ^= 0x10; // line corruption
                            }
                            b
                        })
                        .collect(),
                    _ => wire.to_vec(),
                }
            };
            let mut now = 0;
            let mut to_a: Vec<Vec<u8>> = Vec::new();
            let (mut a_out2, mut b_out2) = (Vec::new(), Vec::new());
            for round in 0..10_000 {
                // Sequential twin.
                for bytes in &to_a {
                    a_seq.handle_wire(now, bytes);
                }
                let a_out = a_seq.poll(now);
                let deliver = mangle(round, &a_out);
                for bytes in &deliver {
                    b_seq.handle_wire(now, bytes);
                }
                let b_out = b_seq.poll(now);

                // Batch twin: identical traffic, one dispatch per side.
                a_out2.clear();
                b_out2.clear();
                let refs: Vec<&[u8]> = to_a.iter().map(|b| &b[..]).collect();
                a_bat.poll_batch(now, &refs, &mut a_out2);
                assert_eq!(a_out2, a_out, "{arm:?} round {round}: sender wire");
                let deliver2 = mangle(round, &a_out2);
                let refs: Vec<&[u8]> = deliver2.iter().map(|b| &b[..]).collect();
                b_bat.poll_batch(now, &refs, &mut b_out2);
                assert_eq!(b_out2, b_out, "{arm:?} round {round}: receiver wire");

                to_a = b_out;
                if a_seq.tx_idle()
                    && to_a.is_empty()
                    && a_seq.next_deadline().is_none()
                    && b_seq.next_deadline().is_none()
                {
                    break;
                }
                now = a_seq
                    .next_deadline()
                    .into_iter()
                    .chain(b_seq.next_deadline())
                    .min()
                    .map_or(now + US, |d| d.max(now + US));
            }
            assert_eq!(
                b_bat.take_delivered(),
                b_seq.take_delivered(),
                "{arm:?}: deliveries"
            );
            assert_eq!(b_bat.stats, b_seq.stats, "{arm:?}: endpoint stats");
            assert_eq!(
                b_bat.channel().stats,
                b_seq.channel().stats,
                "{arm:?}: channel stats"
            );
            assert_eq!(a_bat.stats, a_seq.stats, "{arm:?}: sender stats");
        }
    }

    #[test]
    fn rdma_write_lands_in_peer_memory() {
        let (mut a, mut b) = pair(ChannelSecurity::AuthReplay, RcConfig::default());
        let rkey = RKey(0x5EC0_0001);
        let mtu = RcConfig::default().mtu;
        b.configure_memory(8 * mtu, rkey);
        // Multi-segment write at an offset, then a short Only write.
        let big: Vec<u8> = (0..2 * mtu + 9).map(|i| (i % 251) as u8).collect();
        a.post_write(64, rkey, big.clone());
        a.post_write(0, rkey, vec![0xAB; 8]);
        pump(&mut a, &mut b, 0);
        assert_eq!(&b.memory()[64..64 + big.len()], &big[..]);
        assert_eq!(&b.memory()[..8], &[0xAB; 8]);
        assert_eq!(
            b.take_write_events(),
            vec![(64, big.len() as u32), (0, 8)],
            "completion events in order"
        );
        assert_eq!(b.stats.rdma_faults, 0);
        assert!(
            b.take_delivered().is_empty(),
            "writes bypass the recv queue"
        );
    }

    #[test]
    fn rdma_write_wrong_rkey_faults_without_touching_memory() {
        let (mut a, mut b) = pair(ChannelSecurity::AuthReplay, RcConfig::default());
        b.configure_memory(1024, RKey(1));
        a.post_write(0, RKey(2), vec![0xFF; 100]);
        pump(&mut a, &mut b, 0);
        assert_eq!(b.stats.rdma_faults, 1);
        assert!(b.memory().iter().all(|&x| x == 0), "memory untouched");
        assert!(a.tx_idle(), "flow continues past the refused op");
    }

    #[test]
    fn rdma_read_round_trip() {
        let (mut a, mut b) = pair(ChannelSecurity::AuthReplay, RcConfig::default());
        let rkey = RKey(7);
        let mtu = RcConfig::default().mtu;
        b.configure_memory(4 * mtu, rkey);
        let src: Vec<u8> = (0..3 * mtu).map(|i| (i * 13) as u8).collect();
        b.memory_mut()[..src.len()].copy_from_slice(&src);
        // A segmented read (3 MTUs: First/Middle/Last responses) and a
        // short one (Only).
        a.post_read(0, rkey, src.len() as u32);
        a.post_read(mtu as u64, rkey, 32);
        pump(&mut a, &mut b, 0);
        let got = a.take_read_completions();
        assert_eq!(got.len(), 2, "completions FIFO-match requests");
        assert_eq!(got[0], src);
        assert_eq!(got[1], src[mtu..mtu + 32]);
        assert_eq!(b.stats.reads_served, 2);
        assert_eq!(a.stats.dup_admitted_fresh, 0);
    }

    #[test]
    fn selective_repeat_nak_path_buffers_ahead() {
        let cfg = RcConfig {
            retransmit: RetransmitMode::SelectiveRepeat,
            ack_coalesce: 1,
            ..RcConfig::default()
        };
        let (mut a, mut b) = pair(ChannelSecurity::AuthReplay, cfg);
        for i in 0..4u8 {
            a.post(vec![i]);
        }
        let wire = a.poll(0);
        assert_eq!(wire.len(), 4);
        // Lose PSN 1 on the wire; 0, 2, 3 arrive: 2 and 3 are buffered.
        for (i, bytes) in wire.iter().enumerate() {
            if i != 1 {
                b.handle_wire(0, bytes);
            }
        }
        assert_eq!(b.stats.ooo_buffered, 2);
        assert_eq!(b.stats.gap_drops, 0, "SR buffers instead of dropping");
        pump(&mut a, &mut b, US);
        let got = b.take_delivered();
        assert_eq!(got.len(), 4);
        assert_eq!(got[1], vec![1u8]);
        assert_eq!(a.retransmits(), 1, "only the missing PSN was resent");
        assert_eq!(b.stats.dup_admitted_fresh, 0);
    }

    #[test]
    fn dropped_packet_recovers_via_nak_with_original_psn() {
        let (mut a, mut b) = pair(ChannelSecurity::AuthReplay, RcConfig::default());
        for i in 0..4u8 {
            a.post(vec![i]);
        }
        let wire = a.poll(0);
        assert_eq!(wire.len(), 4);
        // Lose PSN 1 on the wire; 0, 2, 3 arrive.
        for (i, bytes) in wire.iter().enumerate() {
            if i != 1 {
                b.handle_wire(0, bytes);
            }
        }
        // Receiver NAKed for PSN 1; finish the exchange losslessly.
        pump(&mut a, &mut b, US);
        let got = b.take_delivered();
        assert_eq!(got.len(), 4);
        assert_eq!(got[1], vec![1u8], "retransmit delivered in order");
        assert!(a.retransmits() > 0);
        assert_eq!(b.stats.gap_drops, 2, "PSNs 2 and 3 hit the gap");
        assert_eq!(b.stats.dup_admitted_fresh, 0);
    }

    #[test]
    fn replay_of_delivered_suppressed_only_with_window() {
        for arm in ChannelSecurity::ALL {
            let (mut a, mut b) = pair(arm, RcConfig::default());
            a.post(b"secret payment".to_vec());
            let wire = a.poll(0);
            let captured = wire[0].clone();
            b.handle_wire(0, &captured);
            assert_eq!(b.take_delivered().len(), 1);
            // Attacker replays the captured, perfectly-valid bytes.
            b.handle_wire(10 * US, &captured);
            let redelivered = b.take_delivered().len() as u64;
            match arm {
                ChannelSecurity::AuthReplay => {
                    assert_eq!(b.stats.dup_admitted_fresh, 0, "{arm:?}");
                    assert_eq!(redelivered, 0);
                    assert_eq!(b.stats.dup_suppressed, 1);
                }
                ChannelSecurity::NoAuth | ChannelSecurity::Auth => {
                    assert_eq!(b.stats.dup_admitted_fresh, 1, "{arm:?}");
                    assert_eq!(redelivered, 1, "replay delivered twice");
                }
            }
        }
    }

    #[test]
    fn timeout_retransmit_of_undelivered_is_fresh() {
        let (mut a, mut b) = pair(ChannelSecurity::AuthReplay, RcConfig::default());
        a.post(b"only copy".to_vec());
        let wire = a.poll(0);
        assert_eq!(wire.len(), 1);
        // The packet is lost entirely: receiver saw nothing, no NAK comes.
        // The retransmission timer must recover it.
        let deadline = a.next_deadline().unwrap();
        let wire = a.poll(deadline);
        assert_eq!(wire.len(), 1, "timer fired, go-back-N re-emitted");
        b.handle_wire(deadline, &wire[0]);
        assert_eq!(b.take_delivered().len(), 1, "retransmit verdicts Fresh");
        assert_eq!(b.stats.dup_admitted_fresh, 0);
        assert!(a.retransmits() >= 1);
    }

    #[test]
    fn rnr_backpressure_recovers_without_window_pollution() {
        let cfg = RcConfig {
            rx_capacity: 1,
            ack_coalesce: 1,
            ..RcConfig::default()
        };
        let (mut a, mut b) = pair(ChannelSecurity::AuthReplay, cfg);
        a.post(vec![1]);
        a.post(vec![2]);
        for bytes in a.poll(0) {
            b.handle_wire(0, &bytes);
        }
        // Slot 1 took the first message; the second drew an RNR NAK.
        assert_eq!(b.stats.rnr_sent, 1);
        for bytes in b.poll(0) {
            a.handle_wire(0, &bytes);
        }
        // Sender pauses, app drains, retransmit after back-off delivers.
        assert!(a.poll(US).is_empty(), "RNR back-off holds the sender");
        assert_eq!(b.take_delivered(), vec![vec![1u8]]);
        pump(&mut a, &mut b, US);
        assert_eq!(b.take_delivered(), vec![vec![2u8]]);
        assert_eq!(b.stats.dup_admitted_fresh, 0, "RNR'd PSN never recorded");
    }

    #[test]
    fn corrupted_wire_buffer_is_counted_and_dropped() {
        let (mut a, mut b) = pair(ChannelSecurity::Auth, RcConfig::default());
        a.post(vec![9; 64]);
        let mut wire = a.poll(0);
        let mid = wire[0].len() / 2;
        wire[0][mid] ^= 0xFF;
        b.handle_wire(0, &wire[0]);
        assert_eq!(b.stats.parse_drops, 1, "VCRC catches the flip at parse");
        assert!(b.take_delivered().is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds replay window")]
    fn oversized_send_window_rejected() {
        let cfg = RcConfig {
            window: 128,
            ..RcConfig::default()
        };
        let secret = SecretKey::from_seed(1);
        SecureRcEndpoint::new(
            ChannelSecurity::AuthReplay,
            PKEY,
            secret,
            64,
            cfg,
            Lid(1),
            Lid(2),
            Qpn(7),
        );
    }
}
