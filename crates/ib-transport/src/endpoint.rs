//! [`SecureRcEndpoint`]: one side of a reliable connection, wiring the
//! [`crate::qp::RcQp`] state machine to an [`ib_security::SecureChannel`].
//!
//! ## Ordering discipline (who judges what, and in what order)
//!
//! The replay window's bitmap must stay strictly in **delivery order** or
//! its verdicts stop meaning "was this PSN delivered?". The endpoint
//! therefore classifies every data packet against the transport's
//! expected PSN *before* the channel sees it:
//!
//! * **Ahead** of expected → a gap; NAK and drop *without* touching the
//!   replay window. If the window recorded the packet now, the in-order
//!   retransmit that go-back-N is about to produce would read as a
//!   duplicate and the message would never be delivered.
//! * **In order** → check receive-buffer budget first (an RNR'd packet
//!   must not be recorded either — it was not delivered), then
//!   [`SecureChannel::admit`]: `Fresh` delivers, and only then does the
//!   window remember the PSN.
//! * **Behind** expected → some already-received PSN. The transport
//!   re-ACKs (cumulative ACKs are idempotent; a sender whose ACK was
//!   lost needs this), but **delivery** is the channel's call. With the
//!   replay window the verdict is `Duplicate` — suppressed. Without it
//!   the packet verifies and walks in as `Fresh`: that admission is the
//!   §7 vulnerability, counted in [`EndpointStats::dup_admitted_fresh`].
//!
//! Why not let the transport's expected-PSN comparison do the
//! suppressing? Because it is not a security boundary: the PSN ring is
//! 24 bits, so over a connection's lifetime a captured packet's PSN
//! comes back around and classifies as Ahead or InOrder again, and the
//! half-ring Behind test cannot distinguish "delivered long ago" from
//! "never existed". The replay window's bounded, delivered-vs-lost
//! bitmap is the sound mechanism; the experiment measures exactly what
//! happens when it is absent.
//!
//! ## ACKs are verified but not windowed
//!
//! Acknowledgment packets pass [`SecureChannel::verify_only`] — MAC
//! checked, replay window untouched. A replayed cumulative ACK is
//! idempotent (it acknowledges a prefix the sender already advanced
//! past), and ACK PSNs live in the *data* sequence space, so feeding
//! them to the data window would poison it.
//!
//! ## Zero-allocation send path
//!
//! Data and ACK packets are not rebuilt per send. The endpoint keeps two
//! sealed packet *templates* (`tx_pkt`, `ack_pkt`) whose header stacks
//! never change for the life of the connection; each transmission only
//! rewrites the PSN (and payload / AETH), re-runs [`Packet::seal_lengths`]
//! and the channel seal, and serializes with [`Packet::write_into`] into
//! a wire buffer drawn from a bounded recycle pool. Once the template
//! payload capacity and the pool are warm, [`SecureRcEndpoint::poll_into`]
//! performs no heap allocation.

use std::collections::VecDeque;

use ib_mgmt::keymgmt::SecretKey;
use ib_packet::types::{Lid, PKey, Psn, Qpn};
use ib_packet::{Aeth, AethKind, NakCode, OpCode, Packet, PacketBuilder};
use ib_security::{Admit, ChannelSecurity, SecureChannel};
use ib_sim::SimTime;

use crate::config::RcConfig;
use crate::qp::{RcQp, RxClass, RxReply};

/// RNR timer code placed in the AETH (the 5-bit IBA encoding is a table
/// lookup; both ends of this connection share an [`RcConfig`], so the
/// code is advisory and the sender backs off by `cfg.rnr_timer`).
const RNR_TIMER_CODE: u8 = 0;

/// Upper bound on pooled wire buffers; excess recycles are dropped so a
/// burst cannot pin memory forever.
const POOL_CAP: usize = 64;

/// Per-endpoint transport/security counters (the fig_replay metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// Messages delivered to the application for the first time.
    pub delivered: u64,
    /// Behind-expected packets the channel suppressed as duplicates
    /// (lost-ACK retransmits and attacker replays alike).
    pub dup_suppressed: u64,
    /// Behind-expected packets the channel admitted as `Fresh` — already
    /// -received data delivered *again*. Zero whenever the replay window
    /// is on; the replay-attack success count when it is off.
    pub dup_admitted_fresh: u64,
    /// Ahead-of-expected packets dropped (go-back-N gaps).
    pub gap_drops: u64,
    /// Wire buffers that failed to parse (corruption caught by the VCRC).
    pub parse_drops: u64,
    /// ACK/NAK/RNR packets processed.
    pub acks_rx: u64,
    /// RNR NAKs sent because the receive buffer was full.
    pub rnr_sent: u64,
}

/// One side of a secure reliable connection: post messages, shuttle wire
/// buffers, take delivered messages.
pub struct SecureRcEndpoint {
    channel: SecureChannel,
    qp: RcQp,
    /// Sealed data-packet template: headers fixed at construction, only
    /// PSN / payload / seal change per send.
    tx_pkt: Packet,
    /// Sealed ACK/NAK/RNR template: only PSN / AETH / seal change.
    ack_pkt: Packet,
    /// Recycled wire buffers (see [`Self::recycle`]).
    pool: Vec<Vec<u8>>,
    outbox: VecDeque<Vec<u8>>,
    delivered: VecDeque<Vec<u8>>,
    /// Transport/security counters, readable at any time.
    pub stats: EndpointStats,
}

impl SecureRcEndpoint {
    /// Build an endpoint. `replay_window` is the channel's window depth
    /// under [`ChannelSecurity::AuthReplay`].
    ///
    /// # Panics
    ///
    /// If the transport send window exceeds the replay window: a genuine
    /// retransmit could then age out of the window and be rejected as
    /// stale, breaking reliable delivery.
    #[allow(clippy::too_many_arguments)] // a connection is genuinely this wide
    pub fn new(
        security: ChannelSecurity,
        pkey: PKey,
        secret: SecretKey,
        replay_window: u32,
        cfg: RcConfig,
        lid: Lid,
        peer_lid: Lid,
        qpn: Qpn,
    ) -> Self {
        let channel = SecureChannel::new(security, pkey, secret, replay_window);
        if let Some(depth) = channel.window_depth() {
            assert!(
                cfg.window <= depth,
                "send window {} exceeds replay window {depth}: retransmits could go stale",
                cfg.window
            );
        }
        let tx_pkt = PacketBuilder::new(OpCode::RC_SEND_ONLY)
            .slid(lid)
            .dlid(peer_lid)
            .pkey(pkey)
            .dest_qp(qpn)
            .psn(Psn(0))
            .build();
        let ack_pkt = PacketBuilder::new(OpCode::RC_ACKNOWLEDGE)
            .slid(lid)
            .dlid(peer_lid)
            .pkey(pkey)
            .dest_qp(qpn)
            .psn(Psn(0))
            .ack(0, 0)
            .build();
        SecureRcEndpoint {
            channel,
            qp: RcQp::new(cfg),
            tx_pkt,
            ack_pkt,
            pool: Vec::new(),
            outbox: VecDeque::new(),
            delivered: VecDeque::new(),
            stats: EndpointStats::default(),
        }
    }

    /// Queue a message for reliable, authenticated delivery to the peer.
    pub fn post(&mut self, payload: Vec<u8>) {
        self.qp.post(payload);
    }

    /// True when every posted message has been sent and acknowledged.
    pub fn tx_idle(&self) -> bool {
        self.qp.tx_idle()
    }

    /// True when the sender exhausted its retries (QP error state).
    pub fn failed(&self) -> bool {
        self.qp.is_dead()
    }

    /// Total retransmissions performed by this endpoint's sender half.
    pub fn retransmits(&self) -> u64 {
        self.qp.retransmits
    }

    /// The security channel (for its admission counters).
    pub fn channel(&self) -> &SecureChannel {
        &self.channel
    }

    /// Earliest instant this endpoint needs a timer wake-up.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.qp.next_deadline()
    }

    /// Drain messages delivered since the last call, releasing their
    /// receive-buffer slots.
    pub fn take_delivered(&mut self) -> Vec<Vec<u8>> {
        let out: Vec<Vec<u8>> = self.delivered.drain(..).collect();
        for _ in &out {
            self.qp.rx_release();
        }
        out
    }

    /// Run timers and collect every wire buffer this endpoint wants to
    /// transmit now: queued ACK traffic first, then window-permitted data.
    ///
    /// Allocating convenience wrapper over [`Self::poll_into`].
    pub fn poll(&mut self, now: SimTime) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        self.poll_into(now, &mut out);
        out
    }

    /// [`Self::poll`], appending into a caller-owned buffer list. Wire
    /// buffers come from the recycle pool when available; with a warm
    /// pool and warm templates this performs no heap allocation.
    pub fn poll_into(&mut self, now: SimTime, out: &mut Vec<Vec<u8>>) {
        // Retransmission timer: a rewind makes poll_tx below re-emit.
        self.qp.on_timeout(now);
        // Delayed-ACK timer.
        if let Some(reply) = self.qp.poll_ack(now) {
            self.queue_reply(reply);
        }
        out.extend(self.outbox.drain(..));
        // Destructure: `poll_tx`'s borrow of `qp` must coexist with the
        // template, channel, and pool.
        let Self {
            qp,
            channel,
            tx_pkt,
            pool,
            ..
        } = self;
        while let Some(item) = qp.poll_tx(now) {
            tx_pkt.bth.psn = Psn(item.psn);
            tx_pkt.payload.clear();
            tx_pkt.payload.extend_from_slice(&item.payload);
            tx_pkt.seal_lengths();
            // A retransmit rebuilds byte-identical content under the
            // original PSN, so the seal produces the identical nonce and
            // tag: on the wire it is indistinguishable from an attacker's
            // replay.
            channel
                .seal(tx_pkt)
                .expect("partition secret installed at construction");
            let mut buf = pool.pop().unwrap_or_default();
            tx_pkt.write_into(&mut buf);
            out.push(buf);
        }
    }

    /// Hand a spent wire buffer back for reuse by a future send. The pool
    /// is bounded by [`POOL_CAP`]; excess buffers are simply freed.
    pub fn recycle(&mut self, mut buf: Vec<u8>) {
        if self.pool.len() < POOL_CAP {
            buf.clear();
            self.pool.push(buf);
        }
    }

    /// Process one arriving wire buffer.
    pub fn handle_wire(&mut self, now: SimTime, bytes: &[u8]) {
        let Ok(packet) = Packet::parse(bytes) else {
            self.stats.parse_drops += 1;
            return;
        };
        if packet.aeth.is_some() {
            self.handle_ack(now, &packet);
        } else {
            self.handle_data(now, &packet);
        }
    }

    fn handle_ack(&mut self, now: SimTime, packet: &Packet) {
        if self.channel.verify_only(packet).is_err() {
            return; // forged or corrupted ACK: counted in channel stats
        }
        let Some(kind) = packet.aeth.as_ref().and_then(Aeth::kind) else {
            self.stats.parse_drops += 1; // reserved syndrome encoding
            return;
        };
        self.stats.acks_rx += 1;
        let psn = packet.bth.psn.0;
        match kind {
            AethKind::Ack { .. } => self.qp.on_ack(now, psn),
            AethKind::Nak(NakCode::PsnSequenceError) => self.qp.on_nak(now, psn),
            // The fatal NAK classes put a real QP in the error state; this
            // transport never generates them, so treat as unhandled.
            AethKind::Nak(_) => {}
            AethKind::Rnr { .. } => {
                let delay = self.qp.config().rnr_timer;
                self.qp.on_rnr(now, psn, delay);
            }
        }
    }

    fn handle_data(&mut self, now: SimTime, packet: &Packet) {
        let psn = packet.bth.psn.0;
        match self.qp.rx_classify(psn) {
            RxClass::Ahead => {
                // Gap: never shown to the replay window (see module docs).
                self.stats.gap_drops += 1;
                if let Some(reply) = self.qp.rx_gap() {
                    self.queue_reply(reply);
                }
            }
            RxClass::InOrder => {
                if !self.qp.rx_has_budget() {
                    // Not deliverable, so not recorded: the retransmit
                    // after the RNR back-off must still verdict Fresh.
                    self.stats.rnr_sent += 1;
                    let reply = self.qp.rx_not_ready();
                    self.queue_reply(reply);
                    return;
                }
                match self.channel.admit(packet) {
                    Ok(Admit::Fresh) => {
                        self.qp.rx_reserve();
                        self.delivered.push_back(packet.payload.clone());
                        self.stats.delivered += 1;
                        if let Some(reply) = self.qp.rx_accept(now) {
                            self.queue_reply(reply);
                        }
                    }
                    Ok(Admit::Duplicate) => {
                        // The window saw this PSN although the transport
                        // did not: advance past it without re-delivering.
                        self.stats.dup_suppressed += 1;
                        if let Some(reply) = self.qp.rx_accept(now) {
                            self.queue_reply(reply);
                        }
                    }
                    Err(_) => {} // counted in channel stats
                }
            }
            RxClass::Behind => {
                match self.channel.admit(packet) {
                    Ok(Admit::Fresh) => {
                        // No replay window to remember the delivery: an
                        // already-received packet is delivered AGAIN. This
                        // is the replay attack succeeding.
                        self.stats.dup_admitted_fresh += 1;
                        self.qp.rx_reserve();
                        self.delivered.push_back(packet.payload.clone());
                        let reply = self.qp.rx_duplicate();
                        self.queue_reply(reply);
                    }
                    Ok(Admit::Duplicate) => {
                        // Lost-ACK retransmit or attacker replay — either
                        // way: suppress, re-ACK so the sender moves on.
                        self.stats.dup_suppressed += 1;
                        let reply = self.qp.rx_duplicate();
                        self.queue_reply(reply);
                    }
                    Err(_) => {}
                }
            }
        }
    }

    fn queue_reply(&mut self, reply: RxReply) {
        let (psn, aeth) = match reply {
            RxReply::Ack { psn, msn } => (psn, Aeth::ack(msn)),
            RxReply::Nak { psn, msn } => (psn, Aeth::nak(NakCode::PsnSequenceError, msn)),
            RxReply::Rnr { psn, msn } => (psn, Aeth::rnr(RNR_TIMER_CODE, msn)),
        };
        self.ack_pkt.bth.psn = Psn(psn);
        *self
            .ack_pkt
            .aeth
            .as_mut()
            .expect("ACK template carries AETH") = aeth;
        self.channel
            .seal(&mut self.ack_pkt)
            .expect("partition secret installed at construction");
        let mut buf = self.pool.pop().unwrap_or_default();
        self.ack_pkt.write_into(&mut buf);
        self.outbox.push_back(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_sim::time::US;

    const PKEY: PKey = PKey(0x8001);

    fn pair(security: ChannelSecurity, cfg: RcConfig) -> (SecureRcEndpoint, SecureRcEndpoint) {
        let secret = SecretKey::from_seed(99);
        let a = SecureRcEndpoint::new(security, PKEY, secret, 64, cfg, Lid(1), Lid(2), Qpn(7));
        let b = SecureRcEndpoint::new(security, PKEY, secret, 64, cfg, Lid(2), Lid(1), Qpn(7));
        (a, b)
    }

    /// Shuttle wire buffers both ways until neither side has anything to
    /// say, advancing time to the earliest pending deadline when idle.
    fn pump(a: &mut SecureRcEndpoint, b: &mut SecureRcEndpoint, start: SimTime) -> SimTime {
        let mut now = start;
        for _ in 0..10_000 {
            let a_out = a.poll(now);
            let b_out = b.poll(now);
            if a_out.is_empty() && b_out.is_empty() {
                // Nothing on the wire: jump to the earliest timer, or stop
                // when no timer is armed either.
                match a.next_deadline().into_iter().chain(b.next_deadline()).min() {
                    Some(next) => {
                        now = next;
                        continue;
                    }
                    None => return now,
                }
            }
            for bytes in a_out {
                b.handle_wire(now, &bytes);
            }
            for bytes in b_out {
                a.handle_wire(now, &bytes);
            }
            now += US;
            if a.tx_idle()
                && b.tx_idle()
                && a.next_deadline().is_none()
                && b.next_deadline().is_none()
            {
                return now;
            }
        }
        panic!("pump did not converge");
    }

    #[test]
    fn lossless_delivery_all_arms() {
        for arm in ChannelSecurity::ALL {
            let (mut a, mut b) = pair(arm, RcConfig::default());
            for i in 0..20u8 {
                a.post(vec![i; 32]);
            }
            pump(&mut a, &mut b, 0);
            let got = b.take_delivered();
            assert_eq!(got.len(), 20, "{arm:?}");
            assert!(got.iter().enumerate().all(|(i, m)| m[0] == i as u8));
            assert!(a.tx_idle());
            assert_eq!(b.stats.dup_admitted_fresh, 0);
        }
    }

    #[test]
    fn dropped_packet_recovers_via_nak_with_original_psn() {
        let (mut a, mut b) = pair(ChannelSecurity::AuthReplay, RcConfig::default());
        for i in 0..4u8 {
            a.post(vec![i]);
        }
        let wire = a.poll(0);
        assert_eq!(wire.len(), 4);
        // Lose PSN 1 on the wire; 0, 2, 3 arrive.
        for (i, bytes) in wire.iter().enumerate() {
            if i != 1 {
                b.handle_wire(0, bytes);
            }
        }
        // Receiver NAKed for PSN 1; finish the exchange losslessly.
        pump(&mut a, &mut b, US);
        let got = b.take_delivered();
        assert_eq!(got.len(), 4);
        assert_eq!(got[1], vec![1u8], "retransmit delivered in order");
        assert!(a.retransmits() > 0);
        assert_eq!(b.stats.gap_drops, 2, "PSNs 2 and 3 hit the gap");
        assert_eq!(b.stats.dup_admitted_fresh, 0);
    }

    #[test]
    fn replay_of_delivered_suppressed_only_with_window() {
        for arm in ChannelSecurity::ALL {
            let (mut a, mut b) = pair(arm, RcConfig::default());
            a.post(b"secret payment".to_vec());
            let wire = a.poll(0);
            let captured = wire[0].clone();
            b.handle_wire(0, &captured);
            assert_eq!(b.take_delivered().len(), 1);
            // Attacker replays the captured, perfectly-valid bytes.
            b.handle_wire(10 * US, &captured);
            let redelivered = b.take_delivered().len() as u64;
            match arm {
                ChannelSecurity::AuthReplay => {
                    assert_eq!(b.stats.dup_admitted_fresh, 0, "{arm:?}");
                    assert_eq!(redelivered, 0);
                    assert_eq!(b.stats.dup_suppressed, 1);
                }
                ChannelSecurity::NoAuth | ChannelSecurity::Auth => {
                    assert_eq!(b.stats.dup_admitted_fresh, 1, "{arm:?}");
                    assert_eq!(redelivered, 1, "replay delivered twice");
                }
            }
        }
    }

    #[test]
    fn timeout_retransmit_of_undelivered_is_fresh() {
        let (mut a, mut b) = pair(ChannelSecurity::AuthReplay, RcConfig::default());
        a.post(b"only copy".to_vec());
        let wire = a.poll(0);
        assert_eq!(wire.len(), 1);
        // The packet is lost entirely: receiver saw nothing, no NAK comes.
        // The retransmission timer must recover it.
        let deadline = a.next_deadline().unwrap();
        let wire = a.poll(deadline);
        assert_eq!(wire.len(), 1, "timer fired, go-back-N re-emitted");
        b.handle_wire(deadline, &wire[0]);
        assert_eq!(b.take_delivered().len(), 1, "retransmit verdicts Fresh");
        assert_eq!(b.stats.dup_admitted_fresh, 0);
        assert!(a.retransmits() >= 1);
    }

    #[test]
    fn rnr_backpressure_recovers_without_window_pollution() {
        let cfg = RcConfig {
            rx_capacity: 1,
            ack_coalesce: 1,
            ..RcConfig::default()
        };
        let (mut a, mut b) = pair(ChannelSecurity::AuthReplay, cfg);
        a.post(vec![1]);
        a.post(vec![2]);
        for bytes in a.poll(0) {
            b.handle_wire(0, &bytes);
        }
        // Slot 1 took the first message; the second drew an RNR NAK.
        assert_eq!(b.stats.rnr_sent, 1);
        for bytes in b.poll(0) {
            a.handle_wire(0, &bytes);
        }
        // Sender pauses, app drains, retransmit after back-off delivers.
        assert!(a.poll(US).is_empty(), "RNR back-off holds the sender");
        assert_eq!(b.take_delivered(), vec![vec![1u8]]);
        pump(&mut a, &mut b, US);
        assert_eq!(b.take_delivered(), vec![vec![2u8]]);
        assert_eq!(b.stats.dup_admitted_fresh, 0, "RNR'd PSN never recorded");
    }

    #[test]
    fn corrupted_wire_buffer_is_counted_and_dropped() {
        let (mut a, mut b) = pair(ChannelSecurity::Auth, RcConfig::default());
        a.post(vec![9; 64]);
        let mut wire = a.poll(0);
        let mid = wire[0].len() / 2;
        wire[0][mid] ^= 0xFF;
        b.handle_wire(0, &wire[0]);
        assert_eq!(b.stats.parse_drops, 1, "VCRC catches the flip at parse");
        assert!(b.take_delivered().is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds replay window")]
    fn oversized_send_window_rejected() {
        let cfg = RcConfig {
            window: 128,
            ..RcConfig::default()
        };
        let secret = SecretKey::from_seed(1);
        SecureRcEndpoint::new(
            ChannelSecurity::AuthReplay,
            PKEY,
            secret,
            64,
            cfg,
            Lid(1),
            Lid(2),
            Qpn(7),
        );
    }
}
