//! Transport-over-fabric co-simulation: two [`SecureRcEndpoint`]s
//! attached to HCAs of an [`ib_sim::Simulator`] mesh — the fig_rdma
//! experiment.
//!
//! Where [`crate::sim`] models the link as two fault streams and a fixed
//! delay (the determinism oracle), this harness posts every wire buffer
//! into the full fabric via [`Simulator::post_host`]: packets compete
//! with the simulator's own traffic (including Figure-5 attackers) for
//! host-link access, credits and VL arbitration, cross the mesh hop by
//! hop, and are exposed to per-link faults. Deliveries come back through
//! [`Simulator::take_host_delivery`] with their real per-hop latency, so
//! retransmission timers and the replay window interact with congestion
//! rather than a constant RTT.
//!
//! The co-simulation loop alternates endpoint time and fabric time:
//! endpoints speak at `now`, the fabric runs until the next delivery or
//! the earliest endpoint deadline ([`Simulator::run_hosts_until`]), and
//! deliveries are handed to the destination endpoint at their fabric
//! arrival time. The replay attacker taps the destination HCA: it
//! captures every clean data packet and re-posts every `replay_every`-th
//! one from `replay_node` after `replay_delay` — byte-identical to the
//! original, so only the replay window can reject it.
//!
//! Everything is deterministic in `seed`: it steers the fabric (traffic,
//! attacker placement, faults) and the endpoints' shared secret, and the
//! report is bit-identical across same-seed runs.

use std::collections::VecDeque;

use ib_mgmt::keymgmt::SecretKey;
use ib_packet::types::{Lid, PKey, Qpn, RKey};
use ib_packet::{Operation, Packet};
use ib_runtime::{Json, Seed, ToJson};
use ib_security::ChannelSecurity;
use ib_sim::time::{ps_to_us, MS, US};
use ib_sim::{OnlineStats, SimConfig, SimTime, Simulator};

use crate::config::RcConfig;
use crate::endpoint::SecureRcEndpoint;
use crate::sim::payload_for;

/// After the transfer completes, keep the fabric running this long so
/// already-captured replays still in flight get judged by the window.
const REPLAY_DRAIN_GRACE: SimTime = MS;

/// R_Key registered for the RDMA arms.
const FABRIC_RKEY: RKey = RKey(0x0DA7_A001);

/// Which verb the measured flow exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdmaOp {
    /// SEND: messages land in the peer's receive queue.
    Send,
    /// RDMA WRITE: message `i` lands at offset `i × payload_len` of the
    /// responder's memory region.
    Write,
    /// RDMA READ: the requester pulls message `i` from offset
    /// `i × payload_len` of the responder's pre-filled region.
    Read,
}

impl RdmaOp {
    /// All ops, sweep order.
    pub const ALL: [RdmaOp; 3] = [RdmaOp::Send, RdmaOp::Write, RdmaOp::Read];

    /// Stable label for JSON / tables.
    pub fn label(self) -> &'static str {
        match self {
            RdmaOp::Send => "send",
            RdmaOp::Write => "write",
            RdmaOp::Read => "read",
        }
    }

    /// Inverse of [`label`](Self::label).
    pub fn from_label(s: &str) -> Option<RdmaOp> {
        Self::ALL.into_iter().find(|o| o.label() == s)
    }
}

/// Everything one fig_rdma point needs to reproduce itself.
#[derive(Debug, Clone)]
pub struct FabricSimConfig {
    /// Master seed: overrides `sim.seed` and derives the channel secret,
    /// so one number steers fabric and transport alike.
    pub seed: u64,
    /// Security arm under test.
    pub security: ChannelSecurity,
    /// Verb the measured flow uses.
    pub op: RdmaOp,
    /// Messages (or RDMA ops) the requester posts.
    pub messages: usize,
    /// Payload bytes per message (≥ 8; the first 8 carry the index).
    pub payload_len: usize,
    /// Requester's node index (endpoint A's HCA).
    pub src: usize,
    /// Responder's node index (endpoint B's HCA).
    pub dst: usize,
    /// Node the attacker re-injects captured packets from.
    pub replay_node: usize,
    /// Virtual lane the host flow rides (1 = the realtime-priority VL).
    pub vl: u8,
    /// Attacker replays every n-th captured data packet (0 = off).
    pub replay_every: u64,
    /// Delay between capture and re-injection.
    pub replay_delay: SimTime,
    /// Transport knobs (MTU, window, go-back-N vs selective repeat).
    pub rc: RcConfig,
    /// Replay-window depth for the auth+replay-window arm.
    pub replay_window: u32,
    /// Safety valve: give up past this simulated instant.
    pub max_sim_time: SimTime,
    /// The fabric under the flow (loss, attackers, background load).
    pub sim: SimConfig,
}

impl Default for FabricSimConfig {
    fn default() -> Self {
        FabricSimConfig {
            seed: 1,
            security: ChannelSecurity::AuthReplay,
            op: RdmaOp::Send,
            messages: 64,
            payload_len: 256,
            src: 0,
            dst: 15,
            replay_node: 5,
            vl: 1,
            replay_every: 3,
            replay_delay: 5 * US,
            rc: RcConfig::default(),
            replay_window: 64,
            max_sim_time: 500 * MS,
            sim: SimConfig::default(),
        }
    }
}

impl FabricSimConfig {
    /// JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seed", self.seed.to_json()),
            ("security", self.security.label().to_json()),
            ("op", self.op.label().to_json()),
            ("messages", (self.messages as u64).to_json()),
            ("payload_len", (self.payload_len as u64).to_json()),
            ("src", (self.src as u64).to_json()),
            ("dst", (self.dst as u64).to_json()),
            ("replay_node", (self.replay_node as u64).to_json()),
            ("vl", u64::from(self.vl).to_json()),
            ("replay_every", self.replay_every.to_json()),
            ("replay_delay_ps", self.replay_delay.to_json()),
            ("rc", self.rc.to_json()),
            ("replay_window", self.replay_window.to_json()),
            ("max_sim_time_ps", self.max_sim_time.to_json()),
            ("sim", self.sim.to_json()),
        ])
    }

    /// Inverse of [`to_json`](Self::to_json).
    pub fn from_json(v: &Json) -> Option<FabricSimConfig> {
        Some(FabricSimConfig {
            seed: v.get("seed")?.as_u64()?,
            security: ChannelSecurity::from_label(v.get("security")?.as_str()?)?,
            op: RdmaOp::from_label(v.get("op")?.as_str()?)?,
            messages: v.get("messages")?.as_u64()? as usize,
            payload_len: v.get("payload_len")?.as_u64()? as usize,
            src: v.get("src")?.as_u64()? as usize,
            dst: v.get("dst")?.as_u64()? as usize,
            replay_node: v.get("replay_node")?.as_u64()? as usize,
            vl: u8::try_from(v.get("vl")?.as_u64()?).ok()?,
            replay_every: v.get("replay_every")?.as_u64()?,
            replay_delay: v.get("replay_delay_ps")?.as_u64()?,
            rc: RcConfig::from_json(v.get("rc")?)?,
            replay_window: v.get("replay_window")?.as_u64()? as u32,
            max_sim_time: v.get("max_sim_time_ps")?.as_u64()?,
            sim: SimConfig::from_json(v.get("sim")?)?,
        })
    }
}

/// One fig_rdma data point.
#[derive(Debug, Clone)]
pub struct FabricReport {
    /// Unique messages/ops completed at the application.
    pub delivered: u64,
    /// Messages posted.
    pub expected: u64,
    /// Either sender half exhausted its retries (QP error state).
    pub failed: bool,
    /// Run hit `max_sim_time` before completing.
    pub timed_out: bool,
    /// Instant the transfer completed (excludes the replay-drain tail), µs.
    pub completion_us: f64,
    /// Unique completed payload bits over the completion time.
    pub goodput_gbps: f64,
    /// Post-to-completion latency per unique message, µs.
    pub latency_us: OnlineStats,
    /// Requester-side retransmissions (timeouts, NAKs).
    pub retransmits: u64,
    /// Attacker packets re-posted into the fabric.
    pub replays_injected: u64,
    /// Behind-expected packets the responder admitted as fresh. On the
    /// mesh an attacker's replay and a lost-ACK retransmit are the same
    /// bytes, so every such admission is a replay-class failure; always 0
    /// under auth+replay-window.
    pub replays_admitted: u64,
    /// Already-completed messages surfaced to the application again.
    pub duplicates_delivered: u64,
    /// Completions whose payload or addressing failed verification.
    pub payload_mismatches: u64,
    /// Duplicates the channels suppressed (both endpoints).
    pub dup_suppressed: u64,
    /// Ahead-of-expected packets buffered out of order (selective repeat).
    pub ooo_buffered: u64,
    /// Ahead-of-expected packets dropped (go-back-N gaps).
    pub gap_drops: u64,
    /// RDMA ops refused (R_Key / bounds / no open transaction).
    pub rdma_faults: u64,
    /// RDMA READ requests the responder served.
    pub reads_served: u64,
    /// Fabric-wide wire drops by the fault layer (all traffic classes,
    /// host flow included).
    pub fabric_link_drops: u64,
    /// Host wire buffers discarded at parse (fault-layer corruption).
    pub corrupt_drops: u64,
    /// Packets failing MAC/ICRC at either endpoint.
    pub rejected_auth: u64,
    /// Packets rejected as older than the replay window.
    pub rejected_stale: u64,
    /// Total packets the fabric generated (background + attack + host).
    pub fabric_generated: u64,
}

impl FabricReport {
    /// JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("delivered", self.delivered.to_json()),
            ("expected", self.expected.to_json()),
            ("failed", self.failed.to_json()),
            ("timed_out", self.timed_out.to_json()),
            ("completion_us", self.completion_us.to_json()),
            ("goodput_gbps", self.goodput_gbps.to_json()),
            ("latency_us", self.latency_us.to_json()),
            ("retransmits", self.retransmits.to_json()),
            ("replays_injected", self.replays_injected.to_json()),
            ("replays_admitted", self.replays_admitted.to_json()),
            ("duplicates_delivered", self.duplicates_delivered.to_json()),
            ("payload_mismatches", self.payload_mismatches.to_json()),
            ("dup_suppressed", self.dup_suppressed.to_json()),
            ("ooo_buffered", self.ooo_buffered.to_json()),
            ("gap_drops", self.gap_drops.to_json()),
            ("rdma_faults", self.rdma_faults.to_json()),
            ("reads_served", self.reads_served.to_json()),
            ("fabric_link_drops", self.fabric_link_drops.to_json()),
            ("corrupt_drops", self.corrupt_drops.to_json()),
            ("rejected_auth", self.rejected_auth.to_json()),
            ("rejected_stale", self.rejected_stale.to_json()),
            ("fabric_generated", self.fabric_generated.to_json()),
        ])
    }

    /// Inverse of [`to_json`](Self::to_json).
    pub fn from_json(v: &Json) -> Option<FabricReport> {
        Some(FabricReport {
            delivered: v.get("delivered")?.as_u64()?,
            expected: v.get("expected")?.as_u64()?,
            failed: v.get("failed")?.as_bool()?,
            timed_out: v.get("timed_out")?.as_bool()?,
            completion_us: v.get("completion_us")?.as_f64()?,
            goodput_gbps: v.get("goodput_gbps")?.as_f64()?,
            latency_us: OnlineStats::from_json(v.get("latency_us")?)?,
            retransmits: v.get("retransmits")?.as_u64()?,
            replays_injected: v.get("replays_injected")?.as_u64()?,
            replays_admitted: v.get("replays_admitted")?.as_u64()?,
            duplicates_delivered: v.get("duplicates_delivered")?.as_u64()?,
            payload_mismatches: v.get("payload_mismatches")?.as_u64()?,
            dup_suppressed: v.get("dup_suppressed")?.as_u64()?,
            ooo_buffered: v.get("ooo_buffered")?.as_u64()?,
            gap_drops: v.get("gap_drops")?.as_u64()?,
            rdma_faults: v.get("rdma_faults")?.as_u64()?,
            reads_served: v.get("reads_served")?.as_u64()?,
            fabric_link_drops: v.get("fabric_link_drops")?.as_u64()?,
            corrupt_drops: v.get("corrupt_drops")?.as_u64()?,
            rejected_auth: v.get("rejected_auth")?.as_u64()?,
            rejected_stale: v.get("rejected_stale")?.as_u64()?,
            fabric_generated: v.get("fabric_generated")?.as_u64()?,
        })
    }
}

/// Per-run completion accounting, shared by the three verbs.
struct Ledger {
    seen: Vec<bool>,
    payload_len: usize,
    delivered_unique: u64,
    duplicates: u64,
    mismatches: u64,
    latency: OnlineStats,
    /// READ completions FIFO-match requests: index of the next expected.
    next_read: usize,
}

impl Ledger {
    fn new(messages: usize, payload_len: usize) -> Self {
        Ledger {
            seen: vec![false; messages],
            payload_len,
            delivered_unique: 0,
            duplicates: 0,
            mismatches: 0,
            latency: OnlineStats::new(),
            next_read: 0,
        }
    }

    /// Record a completion of message `idx` at `now` (all messages are
    /// posted at t = 0, so latency is the completion instant).
    fn complete(&mut self, idx: usize, now: SimTime) {
        if self.seen[idx] {
            self.duplicates += 1;
        } else {
            self.seen[idx] = true;
            self.delivered_unique += 1;
            self.latency.push(ps_to_us(now));
        }
    }

    /// Drain responder-side completions (SEND deliveries, WRITE events).
    fn drain_dst(&mut self, b: &mut SecureRcEndpoint, op: RdmaOp, now: SimTime) {
        match op {
            RdmaOp::Send => {
                for payload in b.take_delivered() {
                    let idx = u64::from_le_bytes(payload[..8].try_into().unwrap()) as usize;
                    if idx >= self.seen.len() || payload != payload_for(idx, self.payload_len) {
                        self.mismatches += 1;
                        continue;
                    }
                    self.complete(idx, now);
                }
            }
            RdmaOp::Write => {
                let len = self.payload_len as u64;
                for (addr, wlen) in b.take_write_events() {
                    let idx = (addr / len) as usize;
                    let aligned = addr % len == 0 && u64::from(wlen) == len;
                    if !aligned || idx >= self.seen.len() {
                        self.mismatches += 1;
                        continue;
                    }
                    let lo = addr as usize;
                    if b.memory()[lo..lo + wlen as usize] != payload_for(idx, self.payload_len) {
                        self.mismatches += 1;
                        continue;
                    }
                    self.complete(idx, now);
                }
            }
            RdmaOp::Read => {}
        }
    }

    /// Drain requester-side completions (READ payloads, request order).
    fn drain_src(&mut self, a: &mut SecureRcEndpoint, op: RdmaOp, now: SimTime) {
        if op != RdmaOp::Read {
            return;
        }
        for payload in a.take_read_completions() {
            let idx = self.next_read;
            self.next_read += 1;
            if idx >= self.seen.len() || payload != payload_for(idx, self.payload_len) {
                self.mismatches += 1;
                continue;
            }
            self.complete(idx, now);
        }
    }
}

/// Run one fig_rdma point: all ops completed (plus a replay-drain grace
/// window), sender failure, or the time limit.
pub fn run_fabric_sim(cfg: &FabricSimConfig) -> FabricReport {
    assert!(cfg.payload_len >= 8, "payload must hold the 8-byte index");
    let nodes = cfg.sim.num_nodes();
    assert!(cfg.src < nodes && cfg.dst < nodes && cfg.replay_node < nodes);
    assert_ne!(cfg.src, cfg.dst, "the flow needs two distinct HCAs");

    let mut sim_cfg = cfg.sim.clone();
    sim_cfg.seed = Seed(cfg.seed);
    let mut sim = Simulator::new(sim_cfg);

    let secret = SecretKey::from_seed(cfg.seed ^ 0x005E_C2E7);
    let pkey = PKey(0x8001);
    let make = |lid, peer| {
        SecureRcEndpoint::new(
            cfg.security,
            pkey,
            secret,
            cfg.replay_window,
            cfg.rc,
            lid,
            peer,
            Qpn(7),
        )
    };
    let (src_lid, dst_lid) = (Lid(cfg.src as u16 + 1), Lid(cfg.dst as u16 + 1));
    let mut a = make(src_lid, dst_lid);
    let mut b = make(dst_lid, src_lid);

    let region = cfg.messages * cfg.payload_len;
    match cfg.op {
        RdmaOp::Send => {
            for i in 0..cfg.messages {
                a.post(payload_for(i, cfg.payload_len));
            }
        }
        RdmaOp::Write => {
            b.configure_memory(region, FABRIC_RKEY);
            for i in 0..cfg.messages {
                let addr = (i * cfg.payload_len) as u64;
                a.post_write(addr, FABRIC_RKEY, payload_for(i, cfg.payload_len));
            }
        }
        RdmaOp::Read => {
            b.configure_memory(region, FABRIC_RKEY);
            for i in 0..cfg.messages {
                let lo = i * cfg.payload_len;
                b.memory_mut()[lo..lo + cfg.payload_len]
                    .copy_from_slice(&payload_for(i, cfg.payload_len));
                a.post_read(lo as u64, FABRIC_RKEY, cfg.payload_len as u32);
            }
        }
    }

    let mut led = Ledger::new(cfg.messages, cfg.payload_len);
    // Captured-and-due-later replays: (injection time, bytes).
    let mut pending: VecDeque<(SimTime, Vec<u8>)> = VecDeque::new();
    let mut captured = 0u64;
    let mut replays_injected = 0u64;
    let mut wire: Vec<Vec<u8>> = Vec::new();
    let mut now: SimTime = 0;
    let mut done_at: Option<SimTime> = None;
    let mut timed_out = false;

    loop {
        // Attacker re-injections that have come due.
        while pending.front().is_some_and(|(t, _)| *t <= now) {
            let (_, bytes) = pending.pop_front().unwrap();
            replays_injected += 1;
            sim.post_host(cfg.replay_node, cfg.dst, cfg.vl, bytes);
        }
        // Endpoints speak at `now`; their wire buffers enter the fabric.
        a.poll_into(now, &mut wire);
        for bytes in wire.drain(..) {
            sim.post_host(cfg.src, cfg.dst, cfg.vl, bytes);
        }
        b.poll_into(now, &mut wire);
        for bytes in wire.drain(..) {
            sim.post_host(cfg.dst, cfg.src, cfg.vl, bytes);
        }

        if done_at.is_none() && led.delivered_unique == cfg.messages as u64 && a.tx_idle() {
            done_at = Some(now);
        }
        if a.failed() || b.failed() {
            break;
        }
        if now >= cfg.max_sim_time {
            timed_out = done_at.is_none();
            break;
        }
        if let Some(done) = done_at {
            // Transfer complete: drain in-flight and pending replays so
            // the window still judges them, then stop.
            let drain_until = done + cfg.replay_delay + REPLAY_DRAIN_GRACE;
            if now >= drain_until && pending.is_empty() {
                break;
            }
        }

        // Fabric advances to the next delivery, endpoint deadline, replay
        // due time, or the horizon — whichever is first.
        let mut target = cfg.max_sim_time;
        if let Some(d) = a.next_deadline() {
            target = target.min(d);
        }
        if let Some(d) = b.next_deadline() {
            target = target.min(d);
        }
        if let Some((t, _)) = pending.front() {
            target = target.min(*t);
        }
        if let Some(done) = done_at {
            target = target.min(done + cfg.replay_delay + REPLAY_DRAIN_GRACE);
        }
        let target = target.max(now + 1);
        let t = sim.run_hosts_until(target);
        while let Some(d) = sim.take_host_delivery() {
            if d.node == cfg.dst {
                // Attacker tap at the destination HCA: capture clean data
                // packets (ACKs are idempotent — replaying them proves
                // nothing).
                if cfg.replay_every > 0 {
                    if let Ok(p) = Packet::parse(&d.bytes) {
                        if p.bth.opcode.operation != Operation::Acknowledge {
                            captured += 1;
                            if captured.is_multiple_of(cfg.replay_every) {
                                pending.push_back((d.at + cfg.replay_delay, d.bytes.clone()));
                            }
                        }
                    }
                }
                b.handle_wire(d.at, &d.bytes);
                led.drain_dst(&mut b, cfg.op, d.at);
            } else if d.node == cfg.src {
                a.handle_wire(d.at, &d.bytes);
                led.drain_src(&mut a, cfg.op, d.at);
            }
        }
        now = t;
    }

    let completion_ps = done_at.unwrap_or(now).max(1);
    let bits = (led.delivered_unique * cfg.payload_len as u64 * 8) as f64;
    let a_channel = a.channel().stats;
    let b_channel = b.channel().stats;
    FabricReport {
        delivered: led.delivered_unique,
        expected: cfg.messages as u64,
        failed: a.failed() || b.failed(),
        timed_out,
        completion_us: ps_to_us(completion_ps),
        goodput_gbps: bits / (completion_ps as f64 * 1e-12) / 1e9,
        latency_us: led.latency,
        retransmits: a.retransmits(),
        replays_injected,
        replays_admitted: b.stats.dup_admitted_fresh,
        duplicates_delivered: led.duplicates,
        payload_mismatches: led.mismatches,
        dup_suppressed: a.stats.dup_suppressed + b.stats.dup_suppressed,
        ooo_buffered: a.stats.ooo_buffered + b.stats.ooo_buffered,
        gap_drops: a.stats.gap_drops + b.stats.gap_drops,
        rdma_faults: a.stats.rdma_faults + b.stats.rdma_faults,
        reads_served: b.stats.reads_served,
        fabric_link_drops: sim.stats().link_drops,
        corrupt_drops: a.stats.parse_drops + b.stats.parse_drops,
        rejected_auth: a_channel.rejected_auth + b_channel.rejected_auth,
        rejected_stale: b_channel.rejected_stale,
        fabric_generated: sim.stats().generated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_sim::FaultConfig;

    fn base(op: RdmaOp) -> FabricSimConfig {
        let mut cfg = FabricSimConfig {
            op,
            messages: 24,
            payload_len: 96,
            ..FabricSimConfig::default()
        };
        cfg.sim.duration = 2 * MS;
        cfg.sim.warmup = 200 * US;
        cfg
    }

    #[test]
    fn all_ops_complete_over_the_mesh() {
        for op in RdmaOp::ALL {
            let r = run_fabric_sim(&base(op));
            assert_eq!(r.delivered, 24, "{op:?}");
            assert!(!r.failed && !r.timed_out, "{op:?}");
            assert_eq!(r.payload_mismatches, 0, "{op:?}");
            assert_eq!(r.replays_admitted, 0, "{op:?}: window holds");
            assert!(r.replays_injected > 0, "{op:?}: attacker was active");
            assert!(r.goodput_gbps > 0.0, "{op:?}");
            if op == RdmaOp::Read {
                assert_eq!(r.reads_served, 24);
            }
        }
    }

    #[test]
    fn multi_segment_messages_cross_the_fabric() {
        // 2.5 MTUs per message: First/Middle/Last segmentation end to end.
        let mut cfg = base(RdmaOp::Send);
        cfg.messages = 6;
        cfg.payload_len = 2 * cfg.rc.mtu + cfg.rc.mtu / 2;
        let r = run_fabric_sim(&cfg);
        assert_eq!(r.delivered, 6);
        assert_eq!(r.payload_mismatches, 0);
        assert!(!r.failed && !r.timed_out);
    }

    #[test]
    fn lossy_fabric_still_completes_and_rejects_replays() {
        for op in RdmaOp::ALL {
            let mut cfg = base(op);
            cfg.sim.fault = FaultConfig::lossy(0.02, 50_000);
            let r = run_fabric_sim(&cfg);
            assert_eq!(r.delivered, 24, "{op:?}: reliable despite 2% loss");
            assert!(!r.failed && !r.timed_out, "{op:?}");
            assert!(r.retransmits > 0, "{op:?}: loss forces retransmission");
            assert_eq!(r.replays_admitted, 0, "{op:?}");
            assert_eq!(r.payload_mismatches, 0, "{op:?}");
        }
    }

    #[test]
    fn same_seed_same_report_different_seed_different() {
        let mut cfg = base(RdmaOp::Write);
        cfg.sim.fault = FaultConfig::lossy(0.02, 50_000);
        cfg.seed = 42;
        let a = run_fabric_sim(&cfg).to_json().to_string();
        let b = run_fabric_sim(&cfg).to_json().to_string();
        assert_eq!(a, b, "bit-identical across same-seed runs");
        cfg.seed = 43;
        let c = run_fabric_sim(&cfg).to_json().to_string();
        assert_ne!(a, c, "seed steers fabric and transport");
    }

    #[test]
    fn config_and_report_json_round_trip() {
        let mut cfg = base(RdmaOp::Read);
        cfg.rc.retransmit = crate::config::RetransmitMode::SelectiveRepeat;
        cfg.sim.fault = FaultConfig::lossy(0.01, 25_000);
        let text = cfg.to_json().to_string();
        let back = FabricSimConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.to_json().to_string(), text);

        let report = run_fabric_sim(&back);
        let rt = report.to_json().to_string();
        let parsed = FabricReport::from_json(&Json::parse(&rt).unwrap()).unwrap();
        assert_eq!(parsed.to_json().to_string(), rt);
    }
}
