//! One subnet-manager replica: deterministic ranked leader election,
//! epoch key rotation, and reliable key distribution with ack-driven
//! resends.
//!
//! The election is a staggered bully: replica `r`'s election timeout is
//! `election_timeout + r × stagger`, so after the leader dies the
//! lowest-rank live replica times out first, bumps the term, and claims
//! leadership; everyone else sees the claim (or the first heartbeat)
//! before their own timeout fires and adopts it. Ties are impossible
//! because ranks are unique and a claim for an equal term only wins if
//! the claimant's rank is lower. With timers driven by simulation time
//! and all peers iterated in rank order, the whole protocol is
//! bit-deterministic.
//!
//! A new leader cannot know how far its predecessor's rotation got, so
//! its first act is a fresh rotation of every partition it manages —
//! superseding any partially distributed epoch rather than trying to
//! reconstruct it. Distribution is at-least-once: the leader resends
//! `SM_KEY_REPLICATE` / `SM_KEY_UPDATE` MADs until each follower and
//! member CA acks, which tolerates management-datagram loss on the
//! fabric.

use ib_crypto::toyrsa::{PrivateKey, PublicKey};
use ib_mgmt::keymgmt::KeyEnvelope;
use ib_mgmt::{KeyEpoch, PartitionKeyManager, SecretKey};
use ib_packet::mad::Mad;
use ib_packet::types::PKey;
use ib_sim::time::US;
use ib_sim::SimTime;

use crate::wire::SmMessage;

/// A fellow replica, as seen from one replica's configuration.
#[derive(Debug, Clone)]
pub struct PeerReplica {
    /// Election rank (lower wins); doubles as the replica's identity.
    pub id: u8,
    /// HCA node index the peer lives on.
    pub node: usize,
    /// Public key replicated key versions are sealed to.
    pub pubkey: PublicKey,
}

/// A channel adapter the key plane re-keys on rotation.
#[derive(Debug, Clone)]
pub struct CaMember {
    /// HCA node index.
    pub node: usize,
    /// Public key `SM_KEY_UPDATE` envelopes are sealed to.
    pub pubkey: PublicKey,
}

/// Timer and identity knobs for one replica.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaConfig {
    /// Election rank / identity; rank 0 is the bring-up leader.
    pub id: u8,
    /// HCA node index this replica lives on.
    pub node: usize,
    /// Seed for this replica's own key minting (must differ between
    /// replicas so successive leaders never re-mint the same secret).
    pub key_seed: u64,
    /// Leader: beacon period.
    pub heartbeat_interval: SimTime,
    /// Follower: silence tolerated before claiming, before staggering.
    pub election_timeout: SimTime,
    /// Extra timeout per rank unit — serializes would-be claimants.
    pub stagger: SimTime,
    /// Leader: rotate every partition this often (0 disables rotation).
    pub rotation_period: SimTime,
    /// Leader: resend unacked key distribution this often.
    pub resend_interval: SimTime,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            id: 0,
            node: 0,
            key_seed: 1,
            heartbeat_interval: 50 * US,
            election_timeout: 200 * US,
            stagger: 100 * US,
            rotation_period: 300 * US,
            resend_interval: 100 * US,
        }
    }
}

/// Counters one replica accumulates (all messages it originated).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplicaStats {
    pub heartbeats_tx: u64,
    pub claims_tx: u64,
    pub replicates_tx: u64,
    pub replicate_acks_rx: u64,
    pub key_updates_tx: u64,
    pub key_update_acks_rx: u64,
    pub rotations: u64,
    pub takeovers: u64,
}

/// One in-flight key distribution: the newest epoch of one partition and
/// who still has to ack it.
#[derive(Debug)]
struct Distribution {
    pkey: PKey,
    epoch: KeyEpoch,
    secret: SecretKey,
    /// Per-[`SmReplica::peers`] index: follower mirrored the version.
    peer_acked: Vec<bool>,
    /// Per-[`SmReplica::members`] index: CA installed the version.
    member_acked: Vec<bool>,
    last_send: SimTime,
}

impl Distribution {
    /// Complete when every member CA acked. Follower mirroring is best
    /// effort on top (resent while the distribution is live) but must
    /// not gate completion: a killed replica would otherwise pin its
    /// successor's distribution open forever.
    fn complete(&self) -> bool {
        self.member_acked.iter().all(|&a| a)
    }
}

/// One subnet-manager replica (see module docs).
#[derive(Debug)]
pub struct SmReplica {
    cfg: ReplicaConfig,
    keys: PartitionKeyManager,
    privkey: PrivateKey,
    peers: Vec<PeerReplica>,
    members: Vec<CaMember>,
    pkeys: Vec<PKey>,
    term: u64,
    leader: Option<u8>,
    alive: bool,
    last_heartbeat_rx: SimTime,
    last_heartbeat_tx: SimTime,
    next_rotation: Option<SimTime>,
    dist: Vec<Distribution>,
    tid: u64,
    /// Message counters, readable by harnesses.
    pub stats: ReplicaStats,
}

impl SmReplica {
    /// A replica at bring-up: everyone agrees rank 0 leads term 0, and
    /// only rank 0 arms its rotation timer.
    pub fn new(
        cfg: ReplicaConfig,
        peers: Vec<PeerReplica>,
        members: Vec<CaMember>,
        privkey: PrivateKey,
    ) -> Self {
        let next_rotation = (cfg.id == 0 && cfg.rotation_period > 0).then_some(cfg.rotation_period);
        SmReplica {
            keys: PartitionKeyManager::new(cfg.key_seed),
            privkey,
            peers,
            members,
            pkeys: Vec::new(),
            term: 0,
            leader: Some(0),
            alive: true,
            last_heartbeat_rx: 0,
            last_heartbeat_tx: 0,
            next_rotation,
            dist: Vec::new(),
            tid: u64::from(cfg.id) << 56,
            stats: ReplicaStats::default(),
            cfg,
        }
    }

    /// Register a managed partition with its agreed epoch-0 secret
    /// (distributed out of band at fabric bring-up).
    pub fn bootstrap_partition(&mut self, pkey: PKey, secret: SecretKey) {
        self.keys.install_version(pkey, KeyEpoch::ZERO, secret);
        if !self.pkeys.contains(&pkey) {
            self.pkeys.push(pkey);
        }
    }

    /// Fault injection: this replica stops speaking and listening.
    pub fn kill(&mut self) {
        self.alive = false;
    }

    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Whether this replica currently believes it leads.
    pub fn is_leader(&self) -> bool {
        self.alive && self.leader == Some(self.cfg.id)
    }

    pub fn term(&self) -> u64 {
        self.term
    }

    /// Rank of the leader this replica follows (or itself).
    pub fn leader(&self) -> Option<u8> {
        self.leader
    }

    pub fn id(&self) -> u8 {
        self.cfg.id
    }

    pub fn node(&self) -> usize {
        self.cfg.node
    }

    /// Current epoch of a managed partition, as this replica knows it.
    pub fn current_epoch(&self, pkey: PKey) -> Option<KeyEpoch> {
        self.keys.current(pkey).map(|(e, _)| e)
    }

    /// Leader only: every started distribution is fully acked.
    pub fn distribution_complete(&self) -> bool {
        self.dist.iter().all(Distribution::complete)
    }

    /// Rotations this replica performed as leader.
    pub fn rotations(&self) -> u64 {
        self.stats.rotations
    }

    fn next_tid(&mut self) -> u64 {
        self.tid += 1;
        self.tid
    }

    fn effective_timeout(&self) -> SimTime {
        self.cfg.election_timeout + self.cfg.stagger * SimTime::from(self.cfg.id)
    }

    /// Earliest instant this replica next needs the clock to reach
    /// (heartbeat, rotation, resend, or election timeout).
    pub fn next_deadline(&self) -> Option<SimTime> {
        if !self.alive {
            return None;
        }
        if self.is_leader() {
            let mut t = self.last_heartbeat_tx + self.cfg.heartbeat_interval;
            if let Some(r) = self.next_rotation {
                t = t.min(r);
            }
            for d in &self.dist {
                if !d.complete() {
                    t = t.min(d.last_send + self.cfg.resend_interval);
                }
            }
            Some(t)
        } else {
            Some(self.last_heartbeat_rx + self.effective_timeout())
        }
    }

    /// Adopt `(term, id)` if it beats what we currently follow: a higher
    /// term always wins, an equal term wins only for a lower rank.
    fn observe_leader(&mut self, now: SimTime, term: u64, id: u8) {
        let beats = term > self.term
            || (term == self.term && self.leader.is_none_or(|cur| id < cur))
            || (term == self.term && self.leader == Some(id));
        if beats {
            if self.is_leader() && id != self.cfg.id {
                // Stepped down: stop rotating until elected again.
                self.next_rotation = None;
            }
            self.term = term;
            self.leader = Some(id);
            self.last_heartbeat_rx = now;
        }
    }

    /// Rotate every managed partition to a fresh epoch and start
    /// distributing it (sealed per recipient).
    fn rotate_all(&mut self, now: SimTime, out: &mut Vec<(usize, Mad)>) {
        for pkey in self.pkeys.clone() {
            let Some((epoch, secret)) = self.keys.rotate(pkey) else {
                continue;
            };
            self.stats.rotations += 1;
            // Newest epoch supersedes any partial older distribution of
            // the same partition.
            self.dist.retain(|d| d.pkey != pkey);
            self.dist.push(Distribution {
                pkey,
                epoch,
                secret,
                peer_acked: vec![false; self.peers.len()],
                member_acked: vec![false; self.members.len()],
                last_send: now,
            });
            self.send_distribution(self.dist.len() - 1, out);
        }
    }

    /// (Re)send the unacked portion of distribution `idx`.
    fn send_distribution(&mut self, idx: usize, out: &mut Vec<(usize, Mad)>) {
        let term = self.term;
        let (pkey, epoch, secret) = {
            let d = &self.dist[idx];
            (d.pkey, d.epoch, d.secret)
        };
        for p in 0..self.peers.len() {
            if self.dist[idx].peer_acked[p] {
                continue;
            }
            let peer = self.peers[p].clone();
            let msg = SmMessage::ReplicateKey {
                term,
                pkey,
                epoch,
                envelope: KeyEnvelope::seal(&secret, &peer.pubkey),
            };
            let tid = self.next_tid();
            out.push((peer.node, msg.encode(tid)));
            self.stats.replicates_tx += 1;
        }
        for m in 0..self.members.len() {
            if self.dist[idx].member_acked[m] {
                continue;
            }
            let member = self.members[m].clone();
            let msg = SmMessage::KeyUpdate {
                term,
                pkey,
                epoch,
                envelope: KeyEnvelope::seal(&secret, &member.pubkey),
            };
            let tid = self.next_tid();
            out.push((member.node, msg.encode(tid)));
            self.stats.key_updates_tx += 1;
        }
    }

    /// Become leader of the next term: claim it, beacon immediately, and
    /// heal with a fresh rotation (we cannot know how far the dead
    /// leader's distribution got).
    fn take_over(&mut self, now: SimTime, out: &mut Vec<(usize, Mad)>) {
        self.term += 1;
        self.leader = Some(self.cfg.id);
        self.last_heartbeat_rx = now;
        self.stats.takeovers += 1;
        let claim = SmMessage::LeaderClaim {
            term: self.term,
            claimant: self.cfg.id,
        };
        for p in self.peers.clone() {
            let tid = self.next_tid();
            out.push((p.node, claim.encode(tid)));
            self.stats.claims_tx += 1;
        }
        self.beacon(now, out);
        if self.cfg.rotation_period > 0 {
            self.dist.clear();
            self.rotate_all(now, out);
            self.next_rotation = Some(now + self.cfg.rotation_period);
        }
    }

    fn beacon(&mut self, now: SimTime, out: &mut Vec<(usize, Mad)>) {
        self.last_heartbeat_tx = now;
        let hb = SmMessage::Heartbeat {
            term: self.term,
            leader: self.cfg.id,
        };
        for p in self.peers.clone() {
            let tid = self.next_tid();
            out.push((p.node, hb.encode(tid)));
            self.stats.heartbeats_tx += 1;
        }
    }

    /// Drive timers at `now`; outgoing MADs are pushed as
    /// `(destination node, mad)` pairs.
    pub fn poll(&mut self, now: SimTime, out: &mut Vec<(usize, Mad)>) {
        if !self.alive {
            return;
        }
        if self.is_leader() {
            if now.saturating_sub(self.last_heartbeat_tx) >= self.cfg.heartbeat_interval {
                self.beacon(now, out);
            }
            if let Some(t) = self.next_rotation {
                if now >= t {
                    self.rotate_all(now, out);
                    self.next_rotation = Some(now + self.cfg.rotation_period);
                }
            }
            for idx in 0..self.dist.len() {
                if !self.dist[idx].complete()
                    && now.saturating_sub(self.dist[idx].last_send) >= self.cfg.resend_interval
                {
                    self.dist[idx].last_send = now;
                    self.send_distribution(idx, out);
                }
            }
        } else if now.saturating_sub(self.last_heartbeat_rx) >= self.effective_timeout() {
            self.take_over(now, out);
        }
    }

    /// Handle an SM-plane MAD delivered to this replica's node.
    /// `src_node` is the sender's node index (from the packet SLID).
    pub fn handle(
        &mut self,
        now: SimTime,
        src_node: usize,
        mad: &Mad,
        out: &mut Vec<(usize, Mad)>,
    ) {
        if !self.alive {
            return;
        }
        let Some(msg) = SmMessage::decode(mad) else {
            return;
        };
        match msg {
            SmMessage::Heartbeat { term, leader } => self.observe_leader(now, term, leader),
            SmMessage::LeaderClaim { term, claimant } => self.observe_leader(now, term, claimant),
            SmMessage::ReplicateKey {
                term,
                pkey,
                epoch,
                envelope,
            } => {
                let Some(secret) = envelope.open(&self.privkey) else {
                    return;
                };
                self.keys.install_version(pkey, epoch, secret);
                let ack = SmMessage::ReplicateAck {
                    term,
                    pkey,
                    epoch,
                    replica: self.cfg.id,
                };
                let tid = self.next_tid();
                out.push((src_node, ack.encode(tid)));
            }
            SmMessage::ReplicateAck {
                pkey,
                epoch,
                replica,
                ..
            } => {
                self.stats.replicate_acks_rx += 1;
                if let Some(p) = self.peers.iter().position(|p| p.id == replica) {
                    for d in &mut self.dist {
                        if d.pkey == pkey && d.epoch == epoch {
                            d.peer_acked[p] = true;
                        }
                    }
                }
            }
            SmMessage::KeyUpdateAck { pkey, epoch, node } => {
                self.stats.key_update_acks_rx += 1;
                if let Some(m) = self
                    .members
                    .iter()
                    .position(|m| m.node == usize::from(node))
                {
                    for d in &mut self.dist {
                        if d.pkey == pkey && d.epoch == epoch {
                            d.member_acked[m] = true;
                        }
                    }
                }
            }
            // CA-side message; a replica is never a re-keyed member.
            SmMessage::KeyUpdate { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_crypto::toyrsa::generate_keypair;

    const PKEY: PKey = PKey(0x8001);

    /// Build a 3-replica group with one CA member; returns replicas and
    /// the member's private key.
    fn group() -> (Vec<SmReplica>, PrivateKey) {
        let keypairs: Vec<_> = (0..3u64).map(|i| generate_keypair(100 + i)).collect();
        let (member_pub, member_priv) = generate_keypair(999);
        let member = CaMember {
            node: 8,
            pubkey: member_pub,
        };
        let secret0 = SecretKey::from_seed(0xBEEF);
        let replicas = (0..3u8)
            .map(|id| {
                let peers = (0..3u8)
                    .filter(|&p| p != id)
                    .map(|p| PeerReplica {
                        id: p,
                        node: p as usize,
                        pubkey: keypairs[p as usize].0,
                    })
                    .collect();
                let cfg = ReplicaConfig {
                    id,
                    node: id as usize,
                    key_seed: 1000 + u64::from(id),
                    ..ReplicaConfig::default()
                };
                let mut r =
                    SmReplica::new(cfg, peers, vec![member.clone()], keypairs[id as usize].1);
                r.bootstrap_partition(PKEY, secret0);
                r
            })
            .collect();
        (replicas, member_priv)
    }

    /// Deliver every queued MAD instantly (zero-latency bus) until quiet;
    /// the member CA acks every key update. Returns the member's last
    /// installed (epoch, secret).
    fn settle(
        replicas: &mut [SmReplica],
        now: SimTime,
        member_priv: &PrivateKey,
    ) -> Option<(KeyEpoch, SecretKey)> {
        let mut installed = None;
        let mut queue: Vec<(usize, usize, Mad)> = Vec::new(); // (src, dst, mad)
        let mut out = Vec::new();
        for r in replicas.iter_mut() {
            r.poll(now, &mut out);
            let src = r.node();
            queue.extend(out.drain(..).map(|(dst, mad)| (src, dst, mad)));
        }
        for _ in 0..64 {
            if queue.is_empty() {
                break;
            }
            let mut next = Vec::new();
            for (src, dst, mad) in queue.drain(..) {
                if let Some(r) = replicas.iter_mut().find(|r| r.node() == dst) {
                    r.handle(now, src, &mad, &mut out);
                    queue_from(dst, &mut out, &mut next);
                } else if dst == 8 {
                    // The member CA: install and ack.
                    if let Some(SmMessage::KeyUpdate {
                        pkey,
                        epoch,
                        envelope,
                        ..
                    }) = SmMessage::decode(&mad)
                    {
                        let secret = envelope.open(member_priv).unwrap();
                        installed = Some((epoch, secret));
                        let ack = SmMessage::KeyUpdateAck {
                            pkey,
                            epoch,
                            node: 8,
                        };
                        next.push((8, src, ack.encode(0)));
                    }
                }
            }
            queue = next;
        }
        installed
    }

    fn queue_from(src: usize, out: &mut Vec<(usize, Mad)>, queue: &mut Vec<(usize, usize, Mad)>) {
        queue.extend(out.drain(..).map(|(dst, mad)| (src, dst, mad)));
    }

    #[test]
    fn rank_zero_leads_at_bring_up_and_rotates_on_schedule() {
        let (mut reps, member_priv) = group();
        assert!(reps[0].is_leader());
        assert!(!reps[1].is_leader());
        let period = reps[0].cfg.rotation_period;
        // Before the period: heartbeats only, no rotation.
        settle(&mut reps, period - 1, &member_priv);
        assert_eq!(reps[0].rotations(), 0);
        // At the period: epoch 1 minted, replicated, and acked.
        let (epoch, secret) = settle(&mut reps, period, &member_priv).expect("member re-keyed");
        assert_eq!(epoch, KeyEpoch(1));
        assert_eq!(reps[0].rotations(), 1);
        assert!(reps[0].distribution_complete());
        // Followers mirrored the version.
        for r in &reps[1..] {
            assert_eq!(r.current_epoch(PKEY), Some(KeyEpoch(1)), "rank {}", r.id());
            assert_eq!(r.keys.secret_at(PKEY, KeyEpoch(1)), Some(secret));
        }
    }

    #[test]
    fn leader_death_elects_next_rank_and_heals_with_fresh_epoch() {
        let (mut reps, member_priv) = group();
        let period = reps[0].cfg.rotation_period;
        settle(&mut reps, period, &member_priv); // epoch 1 distributed
        reps[0].kill();
        // Rank 1 times out first (stagger) and takes over.
        let timeout = reps[1].cfg.election_timeout + reps[1].cfg.stagger;
        let t = period + timeout;
        let (epoch, _) = settle(&mut reps, t, &member_priv).expect("takeover rotation");
        assert!(reps[1].is_leader());
        assert!(!reps[2].is_leader(), "rank 2 adopted rank 1's claim");
        assert_eq!(reps[2].leader(), Some(1));
        assert_eq!(epoch, KeyEpoch(2), "healing rotation supersedes epoch 1");
        assert!(reps[1].term() > 0);
        assert_eq!(reps[1].stats.takeovers, 1);
    }

    #[test]
    fn unacked_distribution_is_resent() {
        let (mut reps, _member_priv) = group();
        let period = reps[0].cfg.rotation_period;
        let mut out = Vec::new();
        reps[0].poll(period, &mut out); // rotation fires, acks never arrive
        let first = reps[0].stats.key_updates_tx;
        assert!(first > 0);
        assert!(!reps[0].distribution_complete());
        let resend = reps[0].cfg.resend_interval;
        reps[0].poll(period + resend, &mut out);
        assert!(reps[0].stats.key_updates_tx > first, "resend fired");
    }

    #[test]
    fn successive_leaders_never_remint_the_same_secret() {
        let (mut reps, member_priv) = group();
        let period = reps[0].cfg.rotation_period;
        let (_, s1) = settle(&mut reps, period, &member_priv).unwrap();
        reps[0].kill();
        let timeout = reps[1].cfg.election_timeout + reps[1].cfg.stagger;
        let (_, s2) = settle(&mut reps, period + timeout, &member_priv).unwrap();
        assert_ne!(s1, s2, "distinct key_seed per replica prevents reuse");
    }
}
