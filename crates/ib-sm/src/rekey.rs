//! The fig_rekey disruption experiment: many concurrent RC flows cross
//! the mesh while the replicated key plane rotates the partition secret
//! underneath them.
//!
//! The co-simulation extends `ib_transport::fabric::run_fabric_sim` from
//! one flow to a fleet, and adds three actors:
//!
//! * **SM replicas** ([`SmReplica`]) on the first `replicas` nodes,
//!   heartbeating and rotating over VL-15 MADs posted through the same
//!   [`Simulator::post_host`] path the data plane uses. Key updates reach
//!   each member CA as toy-RSA envelopes; the harness opens them with the
//!   node's private key and installs the epoch into every endpoint
//!   resident on that node ([`SecureRcEndpoint::install_epoch`]).
//! * **A leader-kill fault** — at `kill_leader_at` the current leader
//!   goes silent; the staggered election elects the next rank, whose
//!   healing rotation supersedes any partially distributed epoch.
//!   Recovery is measured from the kill to the instant the new leader's
//!   distribution is fully acked.
//! * **A stale-epoch attacker** — captures data packets at one victim
//!   node and re-injects them after `stale_delay`. Chosen longer than
//!   `rotation_period + grace`, every re-injection names a retired epoch
//!   and must be rejected by the epoch layer (counted in
//!   `rejected_stale_epoch`), never admitted fresh.
//!
//! Re-keying is *lazy*: senders stamp the newest installed epoch on each
//! (re)transmission, receivers honour the previous epoch for the grace
//! window, and packets caught mid-rotation heal through ordinary RC
//! retransmission — so 100% eventual delivery holds through rotations
//! and failover. Everything is bit-deterministic in `seed`.

use std::collections::VecDeque;

use ib_crypto::toyrsa::{generate_keypair, PrivateKey};
use ib_mgmt::{KeyEpoch, SecretKey};
use ib_packet::mad::Mad;
use ib_packet::types::{Lid, PKey, Qpn};
use ib_packet::{Operation, Packet};
use ib_runtime::{Json, Seed, ToJson};
use ib_security::ChannelSecurity;
use ib_sim::time::{ps_to_us, MS, US};
use ib_sim::{SimConfig, SimTime, Simulator};
use ib_transport::{RcConfig, SecureRcEndpoint};

use crate::replica::{CaMember, PeerReplica, ReplicaConfig, SmReplica};
use crate::wire::{mad_packet, parse_mad_packet, SmMessage, MGMT_VL, SM_QPN};

/// After the last flow completes, keep the fabric running this long so
/// pending stale re-injections still get judged.
const DRAIN_GRACE: SimTime = MS;

/// The single partition every flow lives in.
const REKEY_PKEY: PKey = PKey(0x8001);

/// First data QPN; flow `i` uses `REKEY_QPN0 + i`.
const REKEY_QPN0: u32 = 8;

/// Everything one fig_rekey point needs to reproduce itself.
#[derive(Debug, Clone)]
pub struct RekeyConfig {
    /// Master seed: fabric, secrets, keypairs.
    pub seed: u64,
    /// Security arm of the data channels.
    pub security: ChannelSecurity,
    /// Concurrent RC flows (each one requester + one responder QP).
    pub flows: usize,
    /// Messages each flow posts.
    pub messages: usize,
    /// Payload bytes per message (≥ 8; the first 8 carry the index).
    pub payload_len: usize,
    /// Pacing between a flow's posts (spreads traffic across rotations).
    pub post_interval: SimTime,
    /// SM replica-group size; replicas live on nodes `0..replicas`.
    pub replicas: usize,
    /// Leader rotates the partition secret this often (0 = never).
    pub rotation_period: SimTime,
    /// Receive-side grace window: how long the previous epoch still
    /// verifies after the next one is installed (0 = hard cutover).
    pub grace: SimTime,
    /// Kill the current leader at this instant (0 = no fault).
    pub kill_leader_at: SimTime,
    /// Attacker captures every n-th data packet at the victim (0 = off).
    pub stale_every: u64,
    /// Capture-to-reinjection delay; set beyond `rotation_period +
    /// grace` so replays arrive under a retired epoch.
    pub stale_delay: SimTime,
    /// Virtual lane the data flows ride (MADs always ride VL 15).
    pub vl: u8,
    /// Transport knobs shared by all flows.
    pub rc: RcConfig,
    /// Replay-window depth.
    pub replay_window: u32,
    /// Goodput-timeline bucket width.
    pub bucket: SimTime,
    /// Safety valve: give up past this simulated instant.
    pub max_sim_time: SimTime,
    /// The fabric underneath (mesh size, background load, faults).
    pub sim: SimConfig,
}

impl Default for RekeyConfig {
    fn default() -> Self {
        RekeyConfig {
            seed: 1,
            security: ChannelSecurity::AuthReplay,
            flows: 8,
            messages: 24,
            payload_len: 256,
            post_interval: 25 * US,
            replicas: 3,
            rotation_period: 150 * US,
            grace: 100 * US,
            kill_leader_at: 0,
            stale_every: 4,
            stale_delay: 600 * US,
            vl: 1,
            rc: RcConfig::default(),
            replay_window: 64,
            bucket: 100 * US,
            max_sim_time: 500 * MS,
            sim: SimConfig::default(),
        }
    }
}

impl RekeyConfig {
    /// JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seed", self.seed.to_json()),
            ("security", self.security.label().to_json()),
            ("flows", (self.flows as u64).to_json()),
            ("messages", (self.messages as u64).to_json()),
            ("payload_len", (self.payload_len as u64).to_json()),
            ("post_interval_ps", self.post_interval.to_json()),
            ("replicas", (self.replicas as u64).to_json()),
            ("rotation_period_ps", self.rotation_period.to_json()),
            ("grace_ps", self.grace.to_json()),
            ("kill_leader_at_ps", self.kill_leader_at.to_json()),
            ("stale_every", self.stale_every.to_json()),
            ("stale_delay_ps", self.stale_delay.to_json()),
            ("vl", u64::from(self.vl).to_json()),
            ("rc", self.rc.to_json()),
            ("replay_window", self.replay_window.to_json()),
            ("bucket_ps", self.bucket.to_json()),
            ("max_sim_time_ps", self.max_sim_time.to_json()),
            ("sim", self.sim.to_json()),
        ])
    }

    /// Inverse of [`to_json`](Self::to_json).
    pub fn from_json(v: &Json) -> Option<RekeyConfig> {
        Some(RekeyConfig {
            seed: v.get("seed")?.as_u64()?,
            security: ChannelSecurity::from_label(v.get("security")?.as_str()?)?,
            flows: v.get("flows")?.as_u64()? as usize,
            messages: v.get("messages")?.as_u64()? as usize,
            payload_len: v.get("payload_len")?.as_u64()? as usize,
            post_interval: v.get("post_interval_ps")?.as_u64()?,
            replicas: v.get("replicas")?.as_u64()? as usize,
            rotation_period: v.get("rotation_period_ps")?.as_u64()?,
            grace: v.get("grace_ps")?.as_u64()?,
            kill_leader_at: v.get("kill_leader_at_ps")?.as_u64()?,
            stale_every: v.get("stale_every")?.as_u64()?,
            stale_delay: v.get("stale_delay_ps")?.as_u64()?,
            vl: u8::try_from(v.get("vl")?.as_u64()?).ok()?,
            rc: RcConfig::from_json(v.get("rc")?)?,
            replay_window: v.get("replay_window")?.as_u64()? as u32,
            bucket: v.get("bucket_ps")?.as_u64()?,
            max_sim_time: v.get("max_sim_time_ps")?.as_u64()?,
            sim: SimConfig::from_json(v.get("sim")?)?,
        })
    }
}

/// One fig_rekey data point.
#[derive(Debug, Clone)]
pub struct RekeyReport {
    /// Unique messages completed across all flows.
    pub delivered: u64,
    /// Messages posted across all flows.
    pub expected: u64,
    /// Any endpoint exhausted its retries.
    pub failed: bool,
    /// Run hit `max_sim_time` before completing.
    pub timed_out: bool,
    /// Instant the last flow completed (excludes the drain tail), µs.
    pub completion_us: f64,
    /// Unique completed payload bits over the completion time.
    pub goodput_gbps: f64,
    /// Rotations leaders performed (bring-up leader + successors).
    pub rotations: u64,
    /// Highest epoch any CA node installed.
    pub final_epoch: u64,
    /// Key-update MADs leaders sent (including resends).
    pub key_updates_tx: u64,
    /// Key-update acks leaders received.
    pub key_update_acks_rx: u64,
    /// Replica-mirroring MADs leaders sent.
    pub replicates_tx: u64,
    /// Heartbeat MADs sent.
    pub heartbeats_tx: u64,
    /// Leader-claim MADs sent.
    pub claims_tx: u64,
    /// Elections won (0 unless the leader was killed).
    pub takeovers: u64,
    /// Leaders killed by fault injection.
    pub leader_kills: u64,
    /// Observed changes of the acting leader.
    pub leader_changes: u64,
    /// Kill-to-fully-redistributed time (0 if no kill), µs.
    pub time_to_recover_us: f64,
    /// Unique deliveries per `bucket`-wide time slot.
    pub buckets: Vec<u64>,
    /// Bucket width, µs.
    pub bucket_us: f64,
    /// min/mean delivery rate over interior buckets (1.0 = no dip).
    pub goodput_dip_frac: f64,
    /// Stale packets the attacker re-injected.
    pub stale_injected: u64,
    /// Attacker packets admitted fresh — must stay 0.
    pub stale_admitted: u64,
    /// Packets rejected because their epoch was retired (past grace).
    pub rejected_stale_epoch: u64,
    /// Packets rejected because their epoch was not yet installed
    /// (receiver ahead of sender; healed by retransmission).
    pub rejected_future_epoch: u64,
    /// Packets failing MAC/ICRC outright.
    pub rejected_auth: u64,
    /// Packets behind the PSN replay window.
    pub rejected_stale_psn: u64,
    /// Duplicates the replay windows suppressed.
    pub dup_suppressed: u64,
    /// Requester-side retransmissions across all flows.
    pub retransmits: u64,
    /// Completions whose payload failed verification.
    pub payload_mismatches: u64,
    /// Already-completed messages surfaced again.
    pub duplicates_delivered: u64,
    /// VL-15 management datagrams the fabric delivered.
    pub mgmt_delivered: u64,
    /// Total packets the fabric generated.
    pub fabric_generated: u64,
}

impl RekeyReport {
    /// JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("delivered", self.delivered.to_json()),
            ("expected", self.expected.to_json()),
            ("failed", self.failed.to_json()),
            ("timed_out", self.timed_out.to_json()),
            ("completion_us", self.completion_us.to_json()),
            ("goodput_gbps", self.goodput_gbps.to_json()),
            ("rotations", self.rotations.to_json()),
            ("final_epoch", self.final_epoch.to_json()),
            ("key_updates_tx", self.key_updates_tx.to_json()),
            ("key_update_acks_rx", self.key_update_acks_rx.to_json()),
            ("replicates_tx", self.replicates_tx.to_json()),
            ("heartbeats_tx", self.heartbeats_tx.to_json()),
            ("claims_tx", self.claims_tx.to_json()),
            ("takeovers", self.takeovers.to_json()),
            ("leader_kills", self.leader_kills.to_json()),
            ("leader_changes", self.leader_changes.to_json()),
            ("time_to_recover_us", self.time_to_recover_us.to_json()),
            (
                "buckets",
                Json::arr(self.buckets.iter().map(|b| b.to_json())),
            ),
            ("bucket_us", self.bucket_us.to_json()),
            ("goodput_dip_frac", self.goodput_dip_frac.to_json()),
            ("stale_injected", self.stale_injected.to_json()),
            ("stale_admitted", self.stale_admitted.to_json()),
            ("rejected_stale_epoch", self.rejected_stale_epoch.to_json()),
            (
                "rejected_future_epoch",
                self.rejected_future_epoch.to_json(),
            ),
            ("rejected_auth", self.rejected_auth.to_json()),
            ("rejected_stale_psn", self.rejected_stale_psn.to_json()),
            ("dup_suppressed", self.dup_suppressed.to_json()),
            ("retransmits", self.retransmits.to_json()),
            ("payload_mismatches", self.payload_mismatches.to_json()),
            ("duplicates_delivered", self.duplicates_delivered.to_json()),
            ("mgmt_delivered", self.mgmt_delivered.to_json()),
            ("fabric_generated", self.fabric_generated.to_json()),
        ])
    }

    /// Inverse of [`to_json`](Self::to_json).
    pub fn from_json(v: &Json) -> Option<RekeyReport> {
        Some(RekeyReport {
            delivered: v.get("delivered")?.as_u64()?,
            expected: v.get("expected")?.as_u64()?,
            failed: v.get("failed")?.as_bool()?,
            timed_out: v.get("timed_out")?.as_bool()?,
            completion_us: v.get("completion_us")?.as_f64()?,
            goodput_gbps: v.get("goodput_gbps")?.as_f64()?,
            rotations: v.get("rotations")?.as_u64()?,
            final_epoch: v.get("final_epoch")?.as_u64()?,
            key_updates_tx: v.get("key_updates_tx")?.as_u64()?,
            key_update_acks_rx: v.get("key_update_acks_rx")?.as_u64()?,
            replicates_tx: v.get("replicates_tx")?.as_u64()?,
            heartbeats_tx: v.get("heartbeats_tx")?.as_u64()?,
            claims_tx: v.get("claims_tx")?.as_u64()?,
            takeovers: v.get("takeovers")?.as_u64()?,
            leader_kills: v.get("leader_kills")?.as_u64()?,
            leader_changes: v.get("leader_changes")?.as_u64()?,
            time_to_recover_us: v.get("time_to_recover_us")?.as_f64()?,
            buckets: v
                .get("buckets")?
                .as_arr()?
                .iter()
                .map(Json::as_u64)
                .collect::<Option<Vec<u64>>>()?,
            bucket_us: v.get("bucket_us")?.as_f64()?,
            goodput_dip_frac: v.get("goodput_dip_frac")?.as_f64()?,
            stale_injected: v.get("stale_injected")?.as_u64()?,
            stale_admitted: v.get("stale_admitted")?.as_u64()?,
            rejected_stale_epoch: v.get("rejected_stale_epoch")?.as_u64()?,
            rejected_future_epoch: v.get("rejected_future_epoch")?.as_u64()?,
            rejected_auth: v.get("rejected_auth")?.as_u64()?,
            rejected_stale_psn: v.get("rejected_stale_psn")?.as_u64()?,
            dup_suppressed: v.get("dup_suppressed")?.as_u64()?,
            retransmits: v.get("retransmits")?.as_u64()?,
            payload_mismatches: v.get("payload_mismatches")?.as_u64()?,
            duplicates_delivered: v.get("duplicates_delivered")?.as_u64()?,
            mgmt_delivered: v.get("mgmt_delivered")?.as_u64()?,
            fabric_generated: v.get("fabric_generated")?.as_u64()?,
        })
    }
}

/// Deterministic message payload: 8-byte LE index + patterned fill
/// (mirrors the transport harness's convention).
fn payload_for(i: usize, len: usize) -> Vec<u8> {
    let mut p = vec![0u8; len];
    p[..8].copy_from_slice(&(i as u64).to_le_bytes());
    for (k, byte) in p.iter_mut().enumerate().skip(8) {
        *byte = (i as u8).wrapping_mul(31).wrapping_add(k as u8);
    }
    p
}

/// One RC flow: requester `a` on `src`, responder `b` on `dst`.
struct Flow {
    src: usize,
    dst: usize,
    qpn: Qpn,
    a: SecureRcEndpoint,
    b: SecureRcEndpoint,
    /// Messages posted so far (paced).
    posted: usize,
    /// This flow's pacing phase offset.
    offset: SimTime,
    seen: Vec<bool>,
    delivered: u64,
    duplicates: u64,
    mismatches: u64,
}

impl Flow {
    fn post_at(&self, k: usize, interval: SimTime) -> SimTime {
        self.offset + interval * k as SimTime
    }

    fn complete_flow(&self, messages: usize) -> bool {
        self.posted == messages && self.delivered == messages as u64 && self.a.tx_idle()
    }
}

/// Run one fig_rekey point (see module docs).
pub fn run_rekey_sim(cfg: &RekeyConfig) -> RekeyReport {
    assert!(cfg.payload_len >= 8, "payload must hold the 8-byte index");
    assert!(
        (1..=8).contains(&cfg.replicas),
        "replica group must be 1..=8"
    );
    let nodes = cfg.sim.num_nodes();
    let ca_nodes = nodes - cfg.replicas;
    assert!(ca_nodes >= 2, "need at least two CA nodes for flows");
    assert!(cfg.flows >= 1 && cfg.messages >= 1);

    let mut sim_cfg = cfg.sim.clone();
    sim_cfg.seed = Seed(cfg.seed);
    let mut sim = Simulator::new(sim_cfg);

    // --- Key material ------------------------------------------------
    // Epoch-0 partition secret, agreed at bring-up; per-node toy-RSA
    // keypairs the SM seals key updates to.
    let secret0 = SecretKey::from_seed(cfg.seed ^ 0x005E_C2E7);
    let node_keys: Vec<(ib_crypto::toyrsa::PublicKey, PrivateKey)> = (0..nodes)
        .map(|n| generate_keypair(cfg.seed ^ ((n as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))))
        .collect();

    // --- Data-plane flows --------------------------------------------
    let mut flows: Vec<Flow> = (0..cfg.flows)
        .map(|i| {
            let src = cfg.replicas + (i % ca_nodes);
            let mut dst = cfg.replicas + ((i + 1 + i / ca_nodes) % ca_nodes);
            if dst == src {
                dst = cfg.replicas + ((dst - cfg.replicas + 1) % ca_nodes);
            }
            let qpn = Qpn(REKEY_QPN0 + i as u32);
            let make = |lid, peer| {
                let mut ep = SecureRcEndpoint::new(
                    cfg.security,
                    REKEY_PKEY,
                    secret0,
                    cfg.replay_window,
                    cfg.rc,
                    lid,
                    peer,
                    qpn,
                );
                ep.set_epoch_grace(cfg.grace);
                ep
            };
            let (sl, dl) = (Lid(src as u16 + 1), Lid(dst as u16 + 1));
            Flow {
                src,
                dst,
                qpn,
                a: make(sl, dl),
                b: make(dl, sl),
                posted: 0,
                offset: cfg.post_interval * i as SimTime / cfg.flows as SimTime,
                seen: vec![false; cfg.messages],
                delivered: 0,
                duplicates: 0,
                mismatches: 0,
            }
        })
        .collect();

    // --- SM replica group --------------------------------------------
    let mut member_nodes: Vec<usize> = flows.iter().flat_map(|f| [f.src, f.dst]).collect();
    member_nodes.sort_unstable();
    member_nodes.dedup();
    let members: Vec<CaMember> = member_nodes
        .iter()
        .map(|&n| CaMember {
            node: n,
            pubkey: node_keys[n].0,
        })
        .collect();
    let mut replicas: Vec<SmReplica> = (0..cfg.replicas)
        .map(|id| {
            let peers = (0..cfg.replicas)
                .filter(|&p| p != id)
                .map(|p| PeerReplica {
                    id: p as u8,
                    node: p,
                    pubkey: node_keys[p].0,
                })
                .collect();
            let rcfg = ReplicaConfig {
                id: id as u8,
                node: id,
                key_seed: cfg.seed ^ ((id as u64 + 1) << 40),
                rotation_period: cfg.rotation_period,
                ..ReplicaConfig::default()
            };
            let mut r = SmReplica::new(rcfg, peers, members.clone(), node_keys[id].1);
            r.bootstrap_partition(REKEY_PKEY, secret0);
            r
        })
        .collect();

    // --- Attacker ----------------------------------------------------
    let victim = flows[0].dst;
    let victim_qpn = flows[0].qpn;
    let attack_node = (cfg.replicas..nodes)
        .find(|&n| n != victim && n != flows[0].src)
        .unwrap_or(flows[0].src);

    // --- Co-simulation loop ------------------------------------------
    let mut pending: VecDeque<(SimTime, Vec<u8>)> = VecDeque::new();
    let mut mad_out: Vec<(usize, Mad)> = Vec::new();
    let mut wire: Vec<Vec<u8>> = Vec::new();
    let mut node_epoch: Vec<KeyEpoch> = vec![KeyEpoch::ZERO; nodes];
    let mut buckets: Vec<u64> = Vec::new();
    let mut captured = 0u64;
    let mut stale_injected = 0u64;
    let mut leader_kills = 0u64;
    let mut leader_changes = 0u64;
    let mut last_leader: Option<u8> = None;
    let mut killed_at: Option<SimTime> = None;
    let mut term_at_kill = 0u64;
    let mut recovered_at: Option<SimTime> = None;
    let mut now: SimTime = 0;
    let mut done_at: Option<SimTime> = None;
    let mut timed_out = false;

    loop {
        // Leader-kill fault injection.
        if cfg.kill_leader_at > 0 && killed_at.is_none() && now >= cfg.kill_leader_at {
            if let Some(l) = replicas.iter_mut().find(|r| r.is_leader()) {
                term_at_kill = l.term();
                l.kill();
                leader_kills += 1;
                killed_at = Some(now);
            }
        }
        // Stale re-injections that have come due.
        while pending.front().is_some_and(|(t, _)| *t <= now) {
            let (_, bytes) = pending.pop_front().unwrap();
            stale_injected += 1;
            sim.post_host(attack_node, victim, cfg.vl, bytes);
        }
        // Paced posting.
        for f in flows.iter_mut() {
            while f.posted < cfg.messages && now >= f.post_at(f.posted, cfg.post_interval) {
                f.a.post(payload_for(f.posted, cfg.payload_len));
                f.posted += 1;
            }
        }
        // SM plane speaks at `now`.
        for r in replicas.iter_mut() {
            r.poll(now, &mut mad_out);
            let src = r.node();
            for (dst, mad) in mad_out.drain(..) {
                let pkt = mad_packet(Lid(src as u16 + 1), Lid(dst as u16 + 1), &mad);
                sim.post_host(src, dst, MGMT_VL, pkt.to_bytes());
            }
        }
        // Data plane speaks at `now`.
        for f in flows.iter_mut() {
            f.a.poll_into(now, &mut wire);
            for bytes in wire.drain(..) {
                sim.post_host(f.src, f.dst, cfg.vl, bytes);
            }
            f.b.poll_into(now, &mut wire);
            for bytes in wire.drain(..) {
                sim.post_host(f.dst, f.src, cfg.vl, bytes);
            }
        }

        // Leadership observation + recovery detection.
        let leader_now = replicas.iter().find(|r| r.is_leader());
        if let Some(l) = leader_now {
            if last_leader != Some(l.id()) {
                if last_leader.is_some() {
                    leader_changes += 1;
                }
                last_leader = Some(l.id());
            }
            if killed_at.is_some()
                && recovered_at.is_none()
                && l.term() > term_at_kill
                && l.rotations() > 0
                && l.distribution_complete()
            {
                recovered_at = Some(now);
            }
        }

        if done_at.is_none() && flows.iter().all(|f| f.complete_flow(cfg.messages)) {
            done_at = Some(now);
        }
        if flows.iter().any(|f| f.a.failed() || f.b.failed()) {
            break;
        }
        if now >= cfg.max_sim_time {
            timed_out = done_at.is_none();
            break;
        }
        if let Some(done) = done_at {
            let drain_until = done + cfg.stale_delay + DRAIN_GRACE;
            // For the kill arm, also wait out the election + re-key.
            let recovered = killed_at.is_none() || recovered_at.is_some();
            if now >= drain_until && pending.is_empty() && recovered {
                break;
            }
        }

        // Next interesting instant: endpoint deadlines, pacing, replica
        // timers, attacker due times, the kill, or the drain horizon.
        let mut target = cfg.max_sim_time;
        for f in &flows {
            if let Some(d) = f.a.next_deadline() {
                target = target.min(d);
            }
            if let Some(d) = f.b.next_deadline() {
                target = target.min(d);
            }
            if f.posted < cfg.messages {
                target = target.min(f.post_at(f.posted, cfg.post_interval));
            }
        }
        for r in &replicas {
            if let Some(d) = r.next_deadline() {
                target = target.min(d);
            }
        }
        if let Some((t, _)) = pending.front() {
            target = target.min(*t);
        }
        if cfg.kill_leader_at > now && killed_at.is_none() {
            target = target.min(cfg.kill_leader_at);
        }
        if let Some(done) = done_at {
            let drain_until = done + cfg.stale_delay + DRAIN_GRACE;
            // Only a future horizon is a scheduling target; a past one
            // (waiting on recovery) must not collapse the step to 1 ps.
            if drain_until > now {
                target = target.min(drain_until);
            }
        }
        let target = target.max(now + 1);
        let t = sim.run_hosts_until(target);

        while let Some(d) = sim.take_host_delivery() {
            // Management plane: MADs to QP0.
            if let Some((src_node, mad)) = parse_mad_packet(&d.bytes) {
                if d.node < cfg.replicas {
                    let rep = &mut replicas[d.node];
                    rep.handle(d.at, src_node, &mad, &mut mad_out);
                    let from = rep.node();
                    for (dst, out_mad) in mad_out.drain(..) {
                        let pkt = mad_packet(Lid(from as u16 + 1), Lid(dst as u16 + 1), &out_mad);
                        sim.post_host(from, dst, MGMT_VL, pkt.to_bytes());
                    }
                } else if let Some(SmMessage::KeyUpdate {
                    pkey,
                    epoch,
                    envelope,
                    ..
                }) = SmMessage::decode(&mad)
                {
                    // A member CA: open the envelope and re-key every
                    // endpoint resident on this node, then ack.
                    if let Some(secret) = envelope.open(&node_keys[d.node].1) {
                        for f in flows.iter_mut() {
                            if f.src == d.node {
                                f.a.install_epoch(d.at, epoch, secret);
                            }
                            if f.dst == d.node {
                                f.b.install_epoch(d.at, epoch, secret);
                            }
                        }
                        node_epoch[d.node] = node_epoch[d.node].max(epoch);
                        let ack = SmMessage::KeyUpdateAck {
                            pkey,
                            epoch,
                            node: d.node as u16,
                        };
                        let pkt = mad_packet(
                            Lid(d.node as u16 + 1),
                            Lid(src_node as u16 + 1),
                            &ack.encode(0),
                        );
                        sim.post_host(d.node, src_node, MGMT_VL, pkt.to_bytes());
                    }
                }
                continue;
            }
            // Data plane: dispatch by (node, QPN).
            let Ok(pkt) = Packet::parse(&d.bytes) else {
                // Corrupted in flight; the owning endpoint's parse would
                // also drop it, so account nowhere and move on.
                continue;
            };
            if pkt.bth.dest_qp == SM_QPN {
                continue;
            }
            // Attacker tap at the victim HCA: capture clean data packets.
            if cfg.stale_every > 0
                && d.node == victim
                && pkt.bth.dest_qp == victim_qpn
                && pkt.bth.opcode.operation != Operation::Acknowledge
            {
                captured += 1;
                if captured.is_multiple_of(cfg.stale_every) {
                    pending.push_back((d.at + cfg.stale_delay, d.bytes.clone()));
                }
            }
            for f in flows.iter_mut() {
                if f.qpn != pkt.bth.dest_qp {
                    continue;
                }
                if f.dst == d.node {
                    f.b.handle_wire(d.at, &d.bytes);
                    for payload in f.b.take_delivered() {
                        let idx = u64::from_le_bytes(payload[..8].try_into().unwrap()) as usize;
                        if idx >= f.seen.len() || payload != payload_for(idx, cfg.payload_len) {
                            f.mismatches += 1;
                        } else if f.seen[idx] {
                            f.duplicates += 1;
                        } else {
                            f.seen[idx] = true;
                            f.delivered += 1;
                            let slot = (d.at / cfg.bucket) as usize;
                            if buckets.len() <= slot {
                                buckets.resize(slot + 1, 0);
                            }
                            buckets[slot] += 1;
                        }
                    }
                } else if f.src == d.node {
                    f.a.handle_wire(d.at, &d.bytes);
                }
                break;
            }
        }
        now = t;
    }

    // --- Report ------------------------------------------------------
    let completion_ps = done_at.unwrap_or(now).max(1);
    let delivered: u64 = flows.iter().map(|f| f.delivered).sum();
    let bits = (delivered * cfg.payload_len as u64 * 8) as f64;
    let interior = if buckets.len() >= 4 {
        &buckets[1..buckets.len() - 1]
    } else {
        &buckets[..]
    };
    let goodput_dip_frac = if interior.is_empty() {
        1.0
    } else {
        let mean = interior.iter().sum::<u64>() as f64 / interior.len() as f64;
        if mean > 0.0 {
            *interior.iter().min().unwrap() as f64 / mean
        } else {
            1.0
        }
    };
    let mut ch = ib_security::channel::ChannelStats::default();
    let mut stale_admitted = 0u64;
    let mut retransmits = 0u64;
    let mut dup_delivered = 0u64;
    let mut mismatches = 0u64;
    for f in &flows {
        for s in [f.a.channel().stats, f.b.channel().stats] {
            ch.rejected_auth += s.rejected_auth;
            ch.rejected_stale += s.rejected_stale;
            ch.rejected_stale_epoch += s.rejected_stale_epoch;
            ch.rejected_future_epoch += s.rejected_future_epoch;
        }
        stale_admitted += f.b.stats.dup_admitted_fresh + f.duplicates;
        retransmits += f.a.retransmits();
        dup_delivered += f.duplicates;
        mismatches += f.mismatches;
    }
    let dup_suppressed: u64 = flows
        .iter()
        .map(|f| f.a.stats.dup_suppressed + f.b.stats.dup_suppressed)
        .sum();
    let mut rotations = 0u64;
    let mut key_updates_tx = 0u64;
    let mut key_update_acks_rx = 0u64;
    let mut replicates_tx = 0u64;
    let mut heartbeats_tx = 0u64;
    let mut claims_tx = 0u64;
    let mut takeovers = 0u64;
    for r in &replicas {
        rotations += r.stats.rotations;
        key_updates_tx += r.stats.key_updates_tx;
        key_update_acks_rx += r.stats.key_update_acks_rx;
        replicates_tx += r.stats.replicates_tx;
        heartbeats_tx += r.stats.heartbeats_tx;
        claims_tx += r.stats.claims_tx;
        takeovers += r.stats.takeovers;
    }
    RekeyReport {
        delivered,
        expected: (cfg.flows * cfg.messages) as u64,
        failed: flows.iter().any(|f| f.a.failed() || f.b.failed()),
        timed_out,
        completion_us: ps_to_us(completion_ps),
        goodput_gbps: bits / (completion_ps as f64 * 1e-12) / 1e9,
        rotations,
        final_epoch: u64::from(node_epoch.iter().max().copied().unwrap_or(KeyEpoch::ZERO).0),
        key_updates_tx,
        key_update_acks_rx,
        replicates_tx,
        heartbeats_tx,
        claims_tx,
        takeovers,
        leader_kills,
        leader_changes,
        time_to_recover_us: match (killed_at, recovered_at) {
            (Some(k), Some(r)) => ps_to_us(r.saturating_sub(k)),
            _ => 0.0,
        },
        buckets,
        bucket_us: ps_to_us(cfg.bucket),
        goodput_dip_frac,
        stale_injected,
        stale_admitted,
        rejected_stale_epoch: ch.rejected_stale_epoch,
        rejected_future_epoch: ch.rejected_future_epoch,
        rejected_auth: ch.rejected_auth,
        rejected_stale_psn: ch.rejected_stale,
        dup_suppressed,
        retransmits,
        payload_mismatches: mismatches,
        duplicates_delivered: dup_delivered,
        mgmt_delivered: sim.stats().mgmt_delivered,
        fabric_generated: sim.stats().generated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> RekeyConfig {
        let mut cfg = RekeyConfig {
            flows: 4,
            messages: 16,
            payload_len: 128,
            post_interval: 20 * US,
            rotation_period: 120 * US,
            grace: 80 * US,
            stale_every: 3,
            stale_delay: 400 * US,
            ..RekeyConfig::default()
        };
        cfg.sim.duration = 2 * MS;
        cfg.sim.warmup = 200 * US;
        cfg
    }

    #[test]
    fn rotation_under_load_delivers_everything() {
        let r = run_rekey_sim(&base());
        assert_eq!(r.delivered, r.expected, "100% eventual delivery");
        assert!(!r.failed && !r.timed_out);
        assert_eq!(r.payload_mismatches, 0);
        assert!(r.rotations >= 1, "the leader rotated under load");
        assert!(r.final_epoch >= 1, "CAs installed a rotated epoch");
        assert_eq!(r.stale_admitted, 0, "no stale-epoch admissions");
        assert!(r.mgmt_delivered > 0, "MADs crossed the fabric");
        assert!(r.heartbeats_tx > 0);
    }

    #[test]
    fn stale_attacker_is_rejected_by_the_epoch_layer() {
        let mut cfg = base();
        // Delay far beyond rotation + grace: every replay names a
        // retired epoch by the time it lands.
        cfg.stale_delay = 600 * US;
        cfg.stale_every = 2;
        let r = run_rekey_sim(&cfg);
        assert_eq!(r.delivered, r.expected);
        assert!(r.stale_injected > 0, "attacker was active");
        assert_eq!(r.stale_admitted, 0);
        assert!(
            r.rejected_stale_epoch > 0,
            "replays died at the epoch check, not just the PSN window"
        );
    }

    #[test]
    fn leader_kill_elects_successor_and_recovers() {
        let mut cfg = base();
        cfg.messages = 32;
        cfg.kill_leader_at = 200 * US;
        let r = run_rekey_sim(&cfg);
        assert_eq!(r.delivered, r.expected, "failover never loses messages");
        assert!(!r.failed && !r.timed_out);
        assert_eq!(r.leader_kills, 1);
        assert!(r.takeovers >= 1, "a successor claimed the term");
        assert!(r.leader_changes >= 1);
        assert!(
            r.time_to_recover_us > 0.0,
            "re-key completed after the kill"
        );
        assert_eq!(r.stale_admitted, 0);
    }

    #[test]
    fn zero_grace_hard_cutover_still_delivers() {
        let mut cfg = base();
        cfg.grace = 0;
        let r = run_rekey_sim(&cfg);
        assert_eq!(r.delivered, r.expected, "retransmission heals cutover");
        assert!(!r.failed && !r.timed_out);
    }

    #[test]
    fn same_seed_same_report_and_json_round_trips() {
        let mut cfg = base();
        cfg.seed = 42;
        let text = cfg.to_json().to_string();
        let back = RekeyConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.to_json().to_string(), text);

        let a = run_rekey_sim(&back).to_json().to_string();
        let b = run_rekey_sim(&cfg).to_json().to_string();
        assert_eq!(a, b, "bit-identical across same-seed runs");

        let parsed = RekeyReport::from_json(&Json::parse(&a).unwrap()).unwrap();
        assert_eq!(parsed.to_json().to_string(), a);

        cfg.seed = 43;
        let c = run_rekey_sim(&cfg).to_json().to_string();
        assert_ne!(a, c, "seed steers everything");
    }
}
