//! SM-plane wire protocol: the key plane's messages encoded as MADs and
//! carried in UD packets to QP0 on the management virtual lane.
//!
//! Every message is one 256-byte [`Mad`] using the vendor attribute range
//! (`attr::SM_HEARTBEAT` … `attr::SM_KEY_UPDATE`). Key material never
//! travels in the clear: both replica mirroring (`SM_KEY_REPLICATE`) and
//! CA re-keying (`SM_KEY_UPDATE`) carry a [`KeyEnvelope`] — the secret
//! sealed to the recipient's toy-RSA public key — packed into the MAD's
//! 232-byte data area. Senders are identified by the packet's SLID, so
//! acks can be routed without a source field in the payload.

use ib_mgmt::keymgmt::KeyEnvelope;
use ib_mgmt::KeyEpoch;
use ib_packet::mad::{attr, Mad, Method};
use ib_packet::types::{Lid, PKey, Psn, QKey, Qpn, VirtualLane};
use ib_packet::{OpCode, Packet, PacketBuilder};

/// QP0: the management QP every port owns (IBA §3.5.3). All SM-plane
/// MADs are addressed to it, which is also how the rekey harness
/// demultiplexes management traffic from data flows.
pub const SM_QPN: Qpn = Qpn(0);

/// VL 15, the management lane: [`ib_sim`]'s VL arbitration scans lanes
/// highest-first, so SM-plane traffic preempts data even under load.
pub const MGMT_VL: u8 = 15;

/// Well-known Q_Key for the management plane (the GSI Q_Key idea).
pub const MGMT_QKEY: QKey = QKey(0x8001_0000);

/// Envelope blocks that fit the data area after the largest fixed
/// header (15 bytes): `15 + 27 × 8 = 231 ≤ 232`.
const MAX_ENVELOPE_BLOCKS: usize = 27;

/// One SM-plane message, the typed view of a vendor-attribute MAD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmMessage {
    /// Leader liveness beacon, sent every heartbeat interval.
    Heartbeat { term: u64, leader: u8 },
    /// A replica claims leadership of `term` after an election timeout.
    LeaderClaim { term: u64, claimant: u8 },
    /// Leader → follower replica: mirror key version `(pkey, epoch)`,
    /// sealed to the follower's public key.
    ReplicateKey {
        term: u64,
        pkey: PKey,
        epoch: KeyEpoch,
        envelope: KeyEnvelope,
    },
    /// Follower → leader: version `(pkey, epoch)` is mirrored.
    ReplicateAck {
        term: u64,
        pkey: PKey,
        epoch: KeyEpoch,
        replica: u8,
    },
    /// Leader → member CA: install key version `(pkey, epoch)`, sealed
    /// to the CA's public key.
    KeyUpdate {
        term: u64,
        pkey: PKey,
        epoch: KeyEpoch,
        envelope: KeyEnvelope,
    },
    /// Member CA → leader: version `(pkey, epoch)` is installed on
    /// node `node`.
    KeyUpdateAck {
        pkey: PKey,
        epoch: KeyEpoch,
        node: u16,
    },
}

fn put_u64(data: &mut [u8], off: usize, v: u64) {
    data[off..off + 8].copy_from_slice(&v.to_be_bytes());
}

fn get_u64(data: &[u8], off: usize) -> u64 {
    u64::from_be_bytes(data[off..off + 8].try_into().unwrap())
}

fn put_envelope(data: &mut [u8], off: usize, env: &KeyEnvelope) {
    assert!(
        env.ciphertext.len() <= MAX_ENVELOPE_BLOCKS,
        "envelope exceeds MAD data area"
    );
    data[off] = env.ciphertext.len() as u8;
    for (i, block) in env.ciphertext.iter().enumerate() {
        put_u64(data, off + 1 + 8 * i, *block);
    }
}

fn get_envelope(data: &[u8], off: usize) -> Option<KeyEnvelope> {
    let n = data[off] as usize;
    if n > MAX_ENVELOPE_BLOCKS {
        return None;
    }
    let blocks = (0..n).map(|i| get_u64(data, off + 1 + 8 * i)).collect();
    Some(KeyEnvelope { ciphertext: blocks })
}

impl SmMessage {
    /// Encode as a MAD carrying `transaction_id`.
    pub fn encode(&self, transaction_id: u64) -> Mad {
        let mut mad = Mad {
            transaction_id,
            ..Mad::default()
        };
        let d = &mut mad.data;
        match self {
            SmMessage::Heartbeat { term, leader } => {
                mad.method = Method::Get;
                mad.attribute_id = attr::SM_HEARTBEAT;
                put_u64(d, 0, *term);
                d[8] = *leader;
            }
            SmMessage::LeaderClaim { term, claimant } => {
                mad.method = Method::Set;
                mad.attribute_id = attr::SM_LEADER_CLAIM;
                put_u64(d, 0, *term);
                d[8] = *claimant;
            }
            SmMessage::ReplicateKey {
                term,
                pkey,
                epoch,
                envelope,
            } => {
                mad.method = Method::Set;
                mad.attribute_id = attr::SM_KEY_REPLICATE;
                put_u64(d, 0, *term);
                d[8..10].copy_from_slice(&pkey.0.to_be_bytes());
                d[10..14].copy_from_slice(&epoch.0.to_be_bytes());
                put_envelope(d, 14, envelope);
            }
            SmMessage::ReplicateAck {
                term,
                pkey,
                epoch,
                replica,
            } => {
                mad.method = Method::GetResp;
                mad.attribute_id = attr::SM_KEY_REPLICATE;
                put_u64(d, 0, *term);
                d[8..10].copy_from_slice(&pkey.0.to_be_bytes());
                d[10..14].copy_from_slice(&epoch.0.to_be_bytes());
                d[14] = *replica;
            }
            SmMessage::KeyUpdate {
                term,
                pkey,
                epoch,
                envelope,
            } => {
                mad.method = Method::Set;
                mad.attribute_id = attr::SM_KEY_UPDATE;
                put_u64(d, 0, *term);
                d[8..10].copy_from_slice(&pkey.0.to_be_bytes());
                d[10..14].copy_from_slice(&epoch.0.to_be_bytes());
                put_envelope(d, 14, envelope);
            }
            SmMessage::KeyUpdateAck { pkey, epoch, node } => {
                mad.method = Method::GetResp;
                mad.attribute_id = attr::SM_KEY_UPDATE;
                d[0..2].copy_from_slice(&pkey.0.to_be_bytes());
                d[2..6].copy_from_slice(&epoch.0.to_be_bytes());
                d[6..8].copy_from_slice(&node.to_be_bytes());
            }
        }
        mad
    }

    /// Decode from a MAD; `None` if it isn't an SM-plane message.
    pub fn decode(mad: &Mad) -> Option<SmMessage> {
        let d = &mad.data;
        let pkey = PKey(u16::from_be_bytes([d[8], d[9]]));
        let epoch = KeyEpoch(u32::from_be_bytes(d[10..14].try_into().unwrap()));
        match (mad.attribute_id, mad.method) {
            (attr::SM_HEARTBEAT, Method::Get) => Some(SmMessage::Heartbeat {
                term: get_u64(d, 0),
                leader: d[8],
            }),
            (attr::SM_LEADER_CLAIM, Method::Set) => Some(SmMessage::LeaderClaim {
                term: get_u64(d, 0),
                claimant: d[8],
            }),
            (attr::SM_KEY_REPLICATE, Method::Set) => Some(SmMessage::ReplicateKey {
                term: get_u64(d, 0),
                pkey,
                epoch,
                envelope: get_envelope(d, 14)?,
            }),
            (attr::SM_KEY_REPLICATE, Method::GetResp) => Some(SmMessage::ReplicateAck {
                term: get_u64(d, 0),
                pkey,
                epoch,
                replica: d[14],
            }),
            (attr::SM_KEY_UPDATE, Method::Set) => Some(SmMessage::KeyUpdate {
                term: get_u64(d, 0),
                pkey,
                epoch,
                envelope: get_envelope(d, 14)?,
            }),
            (attr::SM_KEY_UPDATE, Method::GetResp) => Some(SmMessage::KeyUpdateAck {
                pkey: PKey(u16::from_be_bytes([d[0], d[1]])),
                epoch: KeyEpoch(u32::from_be_bytes(d[2..6].try_into().unwrap())),
                node: u16::from_be_bytes([d[6], d[7]]),
            }),
            _ => None,
        }
    }
}

/// Wrap a MAD in its wire packet: UD SEND to QP0 on VL 15.
pub fn mad_packet(src: Lid, dst: Lid, mad: &Mad) -> Packet {
    PacketBuilder::new(OpCode::UD_SEND_ONLY)
        .slid(src)
        .dlid(dst)
        .vl(VirtualLane(MGMT_VL))
        .dest_qp(SM_QPN)
        .qkey(MGMT_QKEY, SM_QPN)
        .psn(Psn(0))
        .payload(mad.to_bytes().to_vec())
        .build()
}

/// Recognize an SM-plane delivery: a packet addressed to QP0 whose
/// payload parses as a MAD. Returns the sender's node index (SLID − 1)
/// and the MAD.
pub fn parse_mad_packet(bytes: &[u8]) -> Option<(usize, Mad)> {
    let p = Packet::parse(bytes).ok()?;
    if p.bth.dest_qp != SM_QPN {
        return None;
    }
    let mad = Mad::parse(&p.payload).ok()?;
    Some(((p.lrh.slid.0 as usize).checked_sub(1)?, mad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_crypto::toyrsa::generate_keypair;
    use ib_mgmt::keymgmt::SecretKey;

    fn sample_envelope() -> KeyEnvelope {
        let (pk, _) = generate_keypair(7);
        KeyEnvelope::seal(&SecretKey::from_seed(99), &pk)
    }

    #[test]
    fn all_messages_round_trip_through_mads() {
        let msgs = [
            SmMessage::Heartbeat { term: 3, leader: 1 },
            SmMessage::LeaderClaim {
                term: 4,
                claimant: 2,
            },
            SmMessage::ReplicateKey {
                term: 4,
                pkey: PKey(0x8001),
                epoch: KeyEpoch(9),
                envelope: sample_envelope(),
            },
            SmMessage::ReplicateAck {
                term: 4,
                pkey: PKey(0x8001),
                epoch: KeyEpoch(9),
                replica: 2,
            },
            SmMessage::KeyUpdate {
                term: 4,
                pkey: PKey(0x7FFF),
                epoch: KeyEpoch(130),
                envelope: sample_envelope(),
            },
            SmMessage::KeyUpdateAck {
                pkey: PKey(0x7FFF),
                epoch: KeyEpoch(130),
                node: 11,
            },
        ];
        for (i, msg) in msgs.iter().enumerate() {
            let mad = msg.encode(i as u64);
            assert_eq!(mad.transaction_id, i as u64);
            let wire = Mad::parse(&mad.to_bytes()).unwrap();
            assert_eq!(SmMessage::decode(&wire).as_ref(), Some(msg), "{msg:?}");
        }
    }

    #[test]
    fn envelope_survives_the_full_wire_path_and_opens() {
        let (pk, sk) = generate_keypair(42);
        let secret = SecretKey::from_seed(0xFEED);
        let msg = SmMessage::KeyUpdate {
            term: 1,
            pkey: PKey(0x8001),
            epoch: KeyEpoch(1),
            envelope: KeyEnvelope::seal(&secret, &pk),
        };
        let pkt = mad_packet(Lid(3), Lid(5), &msg.encode(77));
        assert_eq!(pkt.bth.dest_qp, SM_QPN);
        assert_eq!(pkt.lrh.vl, VirtualLane(MGMT_VL));
        let (src, mad) = parse_mad_packet(&pkt.to_bytes()).unwrap();
        assert_eq!(src, 2, "SLID 3 is node 2");
        match SmMessage::decode(&mad).unwrap() {
            SmMessage::KeyUpdate { envelope, .. } => {
                assert_eq!(envelope.open(&sk), Some(secret));
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn data_packets_are_not_mistaken_for_mads() {
        let data = PacketBuilder::new(OpCode::UD_SEND_ONLY)
            .slid(Lid(1))
            .dlid(Lid(2))
            .dest_qp(Qpn(8))
            .payload(vec![0u8; 256])
            .build();
        assert!(parse_mad_packet(&data.to_bytes()).is_none());
    }
}
