//! Replicated subnet-manager key plane.
//!
//! The paper's §4.2 key-distribution story assumes a single subnet
//! manager that mints partition keys once at fabric bring-up. This crate
//! grows that into an operational key plane:
//!
//! * **Replica group** ([`replica`]) — 3–5 SM replicas living on real
//!   HCAs of the simulated mesh, exchanging heartbeat / leader-claim /
//!   key-replication MADs (management datagrams on VL 15 to QP0) through
//!   the same fabric the data plane uses. Leadership is a deterministic
//!   ranked election: the lowest-rank live replica claims the next term
//!   when the current leader's heartbeats stop.
//! * **Epoch rotation** — the leader periodically rotates the partition
//!   secret to the next [`ib_mgmt::KeyEpoch`], mirrors the new version to
//!   its follower replicas (sealed to each replica's public key), and
//!   lazily re-keys every member CA with `SM_KEY_UPDATE` MADs carrying a
//!   [`ib_mgmt::keymgmt::KeyEnvelope`]. Send sides switch epochs
//!   immediately; receive sides keep verifying the previous epoch for a
//!   configurable grace window (see `ib_security::SecureChannel`).
//! * **Disruption experiment** ([`rekey`]) — many concurrent RC flows
//!   ride the mesh while the key plane rotates underneath them and a
//!   fault injector kills the leader mid-rotation; the harness measures
//!   goodput dip, rejected packets by cause, and time-to-recover, and is
//!   bit-deterministic in the seed (the fig_rekey experiment).

pub mod rekey;
pub mod replica;
pub mod wire;

pub use rekey::{run_rekey_sim, RekeyConfig, RekeyReport};
pub use replica::{CaMember, PeerReplica, ReplicaConfig, ReplicaStats, SmReplica};
pub use wire::{SmMessage, MGMT_VL, SM_QPN};
