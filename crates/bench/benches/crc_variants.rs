//! Ablation (DESIGN.md #2): bitwise vs byte-table vs slice-by-4 CRC-32 —
//! the software analogue of the paper's "32-bit multistage technology"
//! hardware CRC reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ib_crypto::crc::{crc16_iba, crc32_bitwise, crc32_ieee, crc32_ieee_slice4};
use std::hint::black_box;

fn bench_crc(c: &mut Criterion) {
    for &len in &[64usize, 1024, 4096] {
        let msg = vec![0x5Au8; len];
        let mut group = c.benchmark_group(format!("crc/{len}B"));
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(BenchmarkId::new("crc32-bitwise", len), &msg, |b, m| {
            b.iter(|| crc32_bitwise(black_box(m)))
        });
        group.bench_with_input(BenchmarkId::new("crc32-table", len), &msg, |b, m| {
            b.iter(|| crc32_ieee(black_box(m)))
        });
        group.bench_with_input(BenchmarkId::new("crc32-slice4", len), &msg, |b, m| {
            b.iter(|| crc32_ieee_slice4(black_box(m)))
        });
        group.bench_with_input(BenchmarkId::new("crc16-vcrc", len), &msg, |b, m| {
            b.iter(|| crc16_iba(black_box(m)))
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    // Modest sampling: these run on small CI boxes; trends matter, not
    // microsecond-perfect confidence intervals.
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_crc,
}
criterion_main!(benches);
