//! Ablation (DESIGN.md #2): bitwise vs byte-table vs slice-by-4 CRC-32 —
//! the software analogue of the paper's "32-bit multistage technology"
//! hardware CRC reference.
//!
//! Driven by `ib_runtime::bench` (`--quick` for smoke sampling, first
//! non-flag argument filters benchmark ids).

use ib_crypto::crc::{crc16_iba, crc32_bitwise, crc32_ieee, crc32_ieee_slice4};
use ib_runtime::bench::Harness;
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_args();
    for &len in &[64usize, 1024, 4096] {
        let msg = vec![0x5Au8; len];
        let mut g = h.group(&format!("crc/{len}B"));
        g.throughput_bytes(len as u64);
        g.bench("crc32-bitwise", || crc32_bitwise(black_box(&msg)));
        g.bench("crc32-table", || crc32_ieee(black_box(&msg)));
        g.bench("crc32-slice4", || crc32_ieee_slice4(black_box(&msg)));
        g.bench("crc16-vcrc", || crc16_iba(black_box(&msg)));
        g.finish();
    }
    h.finish();
}
