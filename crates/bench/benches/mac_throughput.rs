//! Benches behind Table 4: throughput of every MAC candidate on the
//! paper's 188-byte (1500-bit) messages and on full 1024-byte MTUs.
//!
//! Driven by `ib_runtime::bench` (`--quick` for smoke sampling, first
//! non-flag argument filters benchmark ids).

use ib_crypto::crc::{crc32_ieee, crc32_ieee_slice4};
use ib_crypto::hmac::Hmac;
use ib_crypto::md5::Md5;
use ib_crypto::pmac::Pmac;
use ib_crypto::sha1::Sha1;
use ib_crypto::stream_mac::StreamMac;
use ib_crypto::umac::Umac;
use ib_runtime::bench::Harness;
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_args();
    let key = [7u8; 16];
    let umac = Umac::new(&key);
    let stream = StreamMac::new(&key);
    let pmac = Pmac::new(&key);

    for &len in &[188usize, 1024] {
        let msg = vec![0xA5u8; len];
        let mut g = h.group(&format!("mac/{len}B"));
        g.throughput_bytes(len as u64);
        g.bench("crc32", || crc32_ieee(black_box(&msg)));
        g.bench("crc32-slice4", || crc32_ieee_slice4(black_box(&msg)));
        let mut nonce = 0u64;
        g.bench("umac32", || {
            nonce += 1;
            umac.tag32(nonce, black_box(&msg))
        });
        g.bench("hmac-md5", || Hmac::<Md5>::tag32(&key, black_box(&msg)));
        g.bench("hmac-sha1", || Hmac::<Sha1>::tag32(&key, black_box(&msg)));
        let mut nonce = 0u64;
        g.bench("stream-mac", || {
            nonce += 1;
            stream.tag32(nonce, black_box(&msg))
        });
        let mut nonce = 0u64;
        g.bench("pmac-aes", || {
            nonce += 1;
            pmac.tag32(nonce, black_box(&msg))
        });
        g.finish();
    }
    h.finish();
}
