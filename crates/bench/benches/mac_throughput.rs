//! Criterion benches behind Table 4: throughput of every MAC candidate on
//! the paper's 188-byte (1500-bit) messages and on full 1024-byte MTUs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ib_crypto::crc::{crc32_ieee, crc32_ieee_slice4};
use ib_crypto::hmac::Hmac;
use ib_crypto::md5::Md5;
use ib_crypto::pmac::Pmac;
use ib_crypto::sha1::Sha1;
use ib_crypto::stream_mac::StreamMac;
use ib_crypto::umac::Umac;
use std::hint::black_box;

fn bench_macs(c: &mut Criterion) {
    let key = [7u8; 16];
    let umac = Umac::new(&key);
    let stream = StreamMac::new(&key);
    let pmac = Pmac::new(&key);

    for &len in &[188usize, 1024] {
        let msg = vec![0xA5u8; len];
        let mut group = c.benchmark_group(format!("mac/{len}B"));
        group.throughput(Throughput::Bytes(len as u64));

        group.bench_with_input(BenchmarkId::new("crc32", len), &msg, |b, m| {
            b.iter(|| crc32_ieee(black_box(m)))
        });
        group.bench_with_input(BenchmarkId::new("crc32-slice4", len), &msg, |b, m| {
            b.iter(|| crc32_ieee_slice4(black_box(m)))
        });
        group.bench_with_input(BenchmarkId::new("umac32", len), &msg, |b, m| {
            let mut nonce = 0u64;
            b.iter(|| {
                nonce += 1;
                umac.tag32(nonce, black_box(m))
            })
        });
        group.bench_with_input(BenchmarkId::new("hmac-md5", len), &msg, |b, m| {
            b.iter(|| Hmac::<Md5>::tag32(&key, black_box(m)))
        });
        group.bench_with_input(BenchmarkId::new("hmac-sha1", len), &msg, |b, m| {
            b.iter(|| Hmac::<Sha1>::tag32(&key, black_box(m)))
        });
        group.bench_with_input(BenchmarkId::new("stream-mac", len), &msg, |b, m| {
            let mut nonce = 0u64;
            b.iter(|| {
                nonce += 1;
                stream.tag32(nonce, black_box(m))
            })
        });
        group.bench_with_input(BenchmarkId::new("pmac-aes", len), &msg, |b, m| {
            let mut nonce = 0u64;
            b.iter(|| {
                nonce += 1;
                pmac.tag32(nonce, black_box(m))
            })
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    // Modest sampling: these run on small CI boxes; trends matter, not
    // microsecond-perfect confidence intervals.
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_macs,
}
criterion_main!(benches);
