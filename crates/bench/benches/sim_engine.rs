//! Simulator engine throughput: how many simulated packets per wall-second
//! the discrete-event core sustains, with and without enforcement — keeps
//! sweep costs predictable and catches engine regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ib_mgmt::enforcement::EnforcementKind;
use ib_sim::config::SimConfig;
use ib_sim::engine::Simulator;
use ib_sim::time::{MS, US};

fn quick_cfg(kind: EnforcementKind, attackers: usize) -> SimConfig {
    SimConfig {
        enforcement: kind,
        num_attackers: attackers,
        attack_probability: 1.0,
        duration: MS,
        warmup: 100 * US,
        ..SimConfig::default()
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim-engine/1ms-run");
    group.sample_size(10);
    for (label, kind, attackers) in [
        ("baseline", EnforcementKind::NoFiltering, 0),
        ("attack-nofilter", EnforcementKind::NoFiltering, 4),
        ("attack-dpt", EnforcementKind::Dpt, 4),
        ("attack-sif", EnforcementKind::Sif, 4),
    ] {
        group.bench_function(BenchmarkId::new(label, 1), |b| {
            b.iter(|| Simulator::new(quick_cfg(kind, attackers)).run())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
