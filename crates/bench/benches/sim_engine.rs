//! Simulator engine throughput: how many simulated packets per wall-second
//! the discrete-event core sustains, with and without enforcement — keeps
//! sweep costs predictable and catches engine regressions.
//!
//! Driven by `ib_runtime::bench` (`--quick` for smoke sampling, first
//! non-flag argument filters benchmark ids).

use ib_mgmt::enforcement::EnforcementKind;
use ib_runtime::bench::{BenchConfig, Harness};
use ib_sim::config::SimConfig;
use ib_sim::engine::Simulator;
use ib_sim::time::{MS, US};
use std::time::Duration;

fn quick_cfg(kind: EnforcementKind, attackers: usize) -> SimConfig {
    SimConfig {
        enforcement: kind,
        num_attackers: attackers,
        attack_probability: 1.0,
        duration: MS,
        warmup: 100 * US,
        ..SimConfig::default()
    }
}

fn main() {
    // Each iteration is a whole 1 ms simulation, so sample sparsely.
    let mut h = Harness::from_args().with_config(BenchConfig {
        warmup: Duration::from_millis(200),
        measurement: Duration::from_secs(2),
        samples: 10,
    });
    let mut g = h.group("sim-engine/1ms-run");
    for (label, kind, attackers) in [
        ("baseline", EnforcementKind::NoFiltering, 0),
        ("attack-nofilter", EnforcementKind::NoFiltering, 4),
        ("attack-dpt", EnforcementKind::Dpt, 4),
        ("attack-sif", EnforcementKind::Sif, 4),
    ] {
        g.bench(label, || Simulator::new(quick_cfg(kind, attackers)).run());
    }
    g.finish();
    h.finish();
}
