//! Ablation (DESIGN.md / paper §7): PMAC's defining property is that block
//! contributions commute, so the accumulation parallelizes. This bench
//! compares sequential PMAC against a crossbeam fan-out over 2/4 lanes on
//! large messages — the software analogue of the independent hardware MAC
//! lanes the paper's "faster InfiniBand" discussion wants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ib_crypto::pmac::Pmac;
use std::hint::black_box;

/// Parallel PMAC: split the full-block prefix across `lanes` threads, XOR
/// the partial sigmas, finalize once.
fn pmac_parallel_tag(pmac: &Pmac, nonce: u64, message: &[u8], lanes: usize) -> u32 {
    let (full, last) = Pmac::split(message);
    let nblocks = full.len() / 16;
    if nblocks < lanes * 4 {
        return pmac.tag32(nonce, message);
    }
    let per = nblocks.div_ceil(lanes);
    let mut partials = vec![[0u8; 16]; lanes];
    crossbeam::thread::scope(|scope| {
        for (lane, partial) in partials.iter_mut().enumerate() {
            let start = lane * per;
            if start >= nblocks {
                break;
            }
            let end = ((lane + 1) * per).min(nblocks);
            let blocks = &full[start * 16..end * 16];
            scope.spawn(move |_| {
                pmac.accumulate(start as u64, blocks, partial);
            });
        }
    })
    .unwrap();
    let mut sigma = [0u8; 16];
    for p in &partials {
        for i in 0..16 {
            sigma[i] ^= p[i];
        }
    }
    pmac.finalize_sigma(sigma, last, nonce)
}

fn bench_pmac(c: &mut Criterion) {
    let pmac = Pmac::new(b"parallel pmac!!!");

    // Correctness first: the parallel path must agree with the sequential.
    let check = vec![0x77u8; 65_536];
    for lanes in [2usize, 4] {
        assert_eq!(
            pmac_parallel_tag(&pmac, 9, &check, lanes),
            pmac.tag32(9, &check),
            "{lanes}-lane PMAC must match sequential"
        );
    }

    for &len in &[4096usize, 65_536] {
        let msg = vec![0x3Cu8; len];
        let mut group = c.benchmark_group(format!("pmac/{len}B"));
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_function(BenchmarkId::new("sequential", len), |b| {
            let mut nonce = 0u64;
            b.iter(|| {
                nonce += 1;
                pmac.tag32(nonce, black_box(&msg))
            })
        });
        for lanes in [2usize, 4] {
            group.bench_function(BenchmarkId::new(format!("{lanes}-lane"), len), |b| {
                let mut nonce = 0u64;
                b.iter(|| {
                    nonce += 1;
                    pmac_parallel_tag(&pmac, nonce, black_box(&msg), lanes)
                })
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    // Modest sampling: these run on small CI boxes; trends matter, not
    // microsecond-perfect confidence intervals.
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pmac,
}
criterion_main!(benches);
