//! Ablation (DESIGN.md / paper §7): PMAC's defining property is that block
//! contributions commute, so the accumulation parallelizes. This bench
//! compares sequential PMAC against a scoped-thread fan-out over 2/4 lanes
//! on large messages — the software analogue of the independent hardware
//! MAC lanes the paper's "faster InfiniBand" discussion wants.
//!
//! Driven by `ib_runtime::bench` (`--quick` for smoke sampling, first
//! non-flag argument filters benchmark ids).

use ib_crypto::pmac::Pmac;
use ib_runtime::bench::Harness;
use ib_runtime::par;
use std::hint::black_box;

/// Parallel PMAC: split the full-block prefix across `lanes` threads, XOR
/// the partial sigmas, finalize once.
fn pmac_parallel_tag(pmac: &Pmac, nonce: u64, message: &[u8], lanes: usize) -> u32 {
    let (full, last) = Pmac::split(message);
    let nblocks = full.len() / 16;
    if nblocks < lanes * 4 {
        return pmac.tag32(nonce, message);
    }
    let per = nblocks.div_ceil(lanes);
    let active: Vec<usize> = (0..lanes).filter(|lane| lane * per < nblocks).collect();
    let partials = par::scope_map(active, |lane| {
        let start = lane * per;
        let end = ((lane + 1) * per).min(nblocks);
        let mut partial = [0u8; 16];
        pmac.accumulate(start as u64, &full[start * 16..end * 16], &mut partial);
        partial
    });
    let mut sigma = [0u8; 16];
    for p in &partials {
        for i in 0..16 {
            sigma[i] ^= p[i];
        }
    }
    pmac.finalize_sigma(sigma, last, nonce)
}

fn main() {
    let mut h = Harness::from_args();
    let pmac = Pmac::new(b"parallel pmac!!!");

    // Correctness first: the parallel path must agree with the sequential.
    let check = vec![0x77u8; 65_536];
    for lanes in [2usize, 4] {
        assert_eq!(
            pmac_parallel_tag(&pmac, 9, &check, lanes),
            pmac.tag32(9, &check),
            "{lanes}-lane PMAC must match sequential"
        );
    }

    for &len in &[4096usize, 65_536] {
        let msg = vec![0x3Cu8; len];
        let mut g = h.group(&format!("pmac/{len}B"));
        g.throughput_bytes(len as u64);
        let mut nonce = 0u64;
        g.bench("sequential", || {
            nonce += 1;
            pmac.tag32(nonce, black_box(&msg))
        });
        for lanes in [2usize, 4] {
            let mut nonce = 0u64;
            g.bench(&format!("{lanes}-lane"), || {
                nonce += 1;
                pmac_parallel_tag(&pmac, nonce, black_box(&msg), lanes)
            });
        }
        g.finish();
    }
    h.finish();
}
