//! End-to-end authentication path: build + tag + serialize + parse +
//! verify a full IBA packet — what a software CA would spend per message
//! under the ICRC-as-MAC scheme, vs the plain-ICRC baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ib_crypto::mac::AuthAlgorithm;
use ib_mgmt::keymgmt::SecretKey;
use ib_packet::{Lid, OpCode, PKey, Packet, PacketBuilder, Psn, QKey, Qpn};
use ib_security::auth::{Authenticator, KeyScope};
use std::hint::black_box;

fn build_packet(psn: u32, payload_len: usize) -> Packet {
    PacketBuilder::new(OpCode::UD_SEND_ONLY)
        .slid(Lid(1))
        .dlid(Lid(2))
        .pkey(PKey(0x8001))
        .psn(Psn(psn))
        .qkey(QKey(0x55), Qpn(3))
        .payload(vec![0xEE; payload_len])
        .build()
}

fn bench_auth_path(c: &mut Criterion) {
    let secret = SecretKey::from_seed(42);
    for &len in &[64usize, 1024] {
        let mut group = c.benchmark_group(format!("auth-path/{len}B"));
        group.throughput(Throughput::Bytes(len as u64));

        group.bench_function(BenchmarkId::new("build+seal(icrc)", len), |b| {
            let mut psn = 0u32;
            b.iter(|| {
                psn += 1;
                black_box(build_packet(psn, len))
            })
        });

        for alg in [AuthAlgorithm::Umac32, AuthAlgorithm::HmacSha1] {
            let mut auth = Authenticator::new(alg, KeyScope::Partition);
            auth.keys.install_partition_secret(PKey(0x8001), secret);
            group.bench_function(BenchmarkId::new(format!("tag/{}", alg.name()), len), |b| {
                let mut psn = 0u32;
                b.iter(|| {
                    psn += 1;
                    let mut pkt = build_packet(psn, len);
                    auth.tag_packet(&mut pkt).unwrap();
                    black_box(pkt)
                })
            });
            group.bench_function(
                BenchmarkId::new(format!("verify/{}", alg.name()), len),
                |b| {
                    let mut pkt = build_packet(1, len);
                    auth.tag_packet(&mut pkt).unwrap();
                    let wire = pkt.to_bytes();
                    b.iter(|| {
                        let parsed = Packet::parse(black_box(&wire)).unwrap();
                        auth.verify_packet(&parsed).unwrap();
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    // Modest sampling: these run on small CI boxes; trends matter, not
    // microsecond-perfect confidence intervals.
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_auth_path,
}
criterion_main!(benches);
