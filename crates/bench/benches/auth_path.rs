//! End-to-end authentication path: build + tag + serialize + parse +
//! verify a full IBA packet — what a software CA would spend per message
//! under the ICRC-as-MAC scheme, vs the plain-ICRC baseline.
//!
//! Driven by `ib_runtime::bench` (`--quick` for smoke sampling, first
//! non-flag argument filters benchmark ids).

use ib_crypto::mac::AuthAlgorithm;
use ib_mgmt::keymgmt::SecretKey;
use ib_packet::{Lid, OpCode, PKey, Packet, PacketBuilder, Psn, QKey, Qpn};
use ib_runtime::bench::Harness;
use ib_security::auth::{Authenticator, KeyScope};
use std::hint::black_box;

fn build_packet(psn: u32, payload_len: usize) -> Packet {
    PacketBuilder::new(OpCode::UD_SEND_ONLY)
        .slid(Lid(1))
        .dlid(Lid(2))
        .pkey(PKey(0x8001))
        .psn(Psn(psn))
        .qkey(QKey(0x55), Qpn(3))
        .payload(vec![0xEE; payload_len])
        .build()
}

fn main() {
    let mut h = Harness::from_args();
    let secret = SecretKey::from_seed(42);
    for &len in &[64usize, 1024] {
        let mut g = h.group(&format!("auth-path/{len}B"));
        g.throughput_bytes(len as u64);

        let mut psn = 0u32;
        g.bench("build+seal(icrc)", || {
            psn += 1;
            black_box(build_packet(psn, len))
        });

        for alg in [AuthAlgorithm::Umac32, AuthAlgorithm::HmacSha1] {
            let mut auth = Authenticator::new(alg, KeyScope::Partition);
            auth.keys.install_partition_secret(PKey(0x8001), secret);
            let mut psn = 0u32;
            g.bench(&format!("tag/{}", alg.name()), || {
                psn += 1;
                let mut pkt = build_packet(psn, len);
                auth.tag_packet(&mut pkt).unwrap();
                black_box(pkt)
            });
            let mut pkt = build_packet(1, len);
            auth.tag_packet(&mut pkt).unwrap();
            let wire = pkt.to_bytes();
            g.bench(&format!("verify/{}", alg.name()), || {
                let parsed = Packet::parse(black_box(&wire)).unwrap();
                auth.verify_packet(&parsed).unwrap();
            });
        }
        g.finish();
    }
    h.finish();
}
