//! Shared helpers for the experiment binaries: throughput measurement,
//! plain-text table rendering, seed plumbing, and machine-readable
//! result emission (`BENCH_*.json`).

use ib_runtime::{Json, Seed, ToJson};
use std::time::Instant;

/// Measure the steady-state throughput of `f` over `message_len`-byte
/// inputs: runs a warmup, then times enough iterations to cover
/// `target_ms` of wall clock. Returns bytes/second.
pub fn measure_throughput(message_len: usize, target_ms: u64, mut f: impl FnMut()) -> f64 {
    // Warmup.
    for _ in 0..32 {
        f();
    }
    let mut iters: u64 = 64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() as u64 >= target_ms {
            return (iters as f64 * message_len as f64) / elapsed.as_secs_f64();
        }
        iters = iters.saturating_mul(4);
    }
}

/// Estimate the CPU clock in Hz by timing a dependent-add spin loop
/// (1 add/cycle on every 64-bit core this runs on). Good to a few percent,
/// which is all the cycles/byte normalization needs.
pub fn estimate_cpu_hz() -> f64 {
    let iters: u64 = 200_000_000;
    let start = Instant::now();
    let mut acc: u64 = 0;
    for i in 0..iters {
        // A dependent chain the compiler cannot vectorize away.
        acc = acc.wrapping_mul(1).wrapping_add(i ^ acc.rotate_left(1));
    }
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(acc);
    // The loop body is ~3 dependent ops; calibrate empirically as 1 iter ≈
    // 3 cycles. This is a rough but stable estimate.
    iters as f64 * 3.0 / elapsed
}

/// Render rows of (label, values) as an aligned plain-text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("| ");
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:<width$} | ", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&"-".repeat(w + 2));
        sep.push('|');
    }
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Assemble the standard experiment result document: experiment name,
/// the seed it reproduces from, the configuration, and the per-point
/// rows — everything a plotting script (or a re-run) needs.
pub fn bench_doc(experiment: &str, seed: Seed, config: Json, points: Vec<Json>) -> Json {
    Json::obj([
        ("experiment", experiment.to_json()),
        ("seed", seed.0.to_json()),
        ("config", config),
        ("points", Json::arr(points)),
    ])
}

/// Write an experiment's result document to `BENCH_<name>.json` in the
/// current directory (deterministic, insertion-ordered output — two
/// same-seed runs produce byte-identical files). Returns the path.
pub fn write_bench_json(name: &str, doc: &Json) -> std::io::Result<std::path::PathBuf> {
    let path = std::path::PathBuf::from(format!("BENCH_{name}.json"));
    std::fs::write(&path, format!("{doc}\n"))?;
    Ok(path)
}

/// Parse `--flag value` style arguments; returns the value following the
/// flag, if present.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parse a `--seed <u64>` argument (decimal or `0x`-prefixed hex). Falls
/// back to the workspace's fixed default seed, so every experiment binary
/// is reproducible with no arguments and re-runnable from the seed it
/// prints in its header.
pub fn seed_arg(args: &[String]) -> Seed {
    match arg_value(args, "--seed") {
        Some(v) => {
            let v = v.trim();
            let parsed = if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                u64::from_str_radix(hex, 16).ok()
            } else {
                v.parse().ok()
            };
            Seed(parsed.unwrap_or_else(|| panic!("--seed {v:?} is not a u64")))
        }
        None => ib_sim::config::SimConfig::default().seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let out = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2".into()],
            ],
        );
        assert!(out.contains("| name"));
        assert!(out.contains("| long-name | 2"));
        assert_eq!(out.lines().count(), 4);
    }

    #[test]
    fn arg_value_parses() {
        let args: Vec<String> = ["prog", "--load", "0.5", "--quick"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--load"), Some("0.5".into()));
        assert_eq!(arg_value(&args, "--quick"), None);
        assert_eq!(arg_value(&args, "--missing"), None);
    }

    #[test]
    fn seed_arg_parses_dec_hex_and_defaults() {
        let to_args = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert_eq!(seed_arg(&to_args(&["prog", "--seed", "42"])), Seed(42));
        assert_eq!(
            seed_arg(&to_args(&["prog", "--seed", "0xBEEF"])),
            Seed(0xBEEF)
        );
        assert_eq!(
            seed_arg(&to_args(&["prog"])),
            ib_sim::config::SimConfig::default().seed
        );
    }

    #[test]
    fn bench_doc_round_trips() {
        let doc = bench_doc(
            "fig_test",
            Seed(0xABCD),
            Json::obj([("knob", 3u64.to_json())]),
            vec![Json::obj([("x", 1u64.to_json())])],
        );
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("experiment").unwrap().as_str(), Some("fig_test"));
        assert_eq!(back.get("seed").unwrap().as_u64(), Some(0xABCD));
        assert_eq!(back.get("points").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(back, doc, "writer/parser agree");
    }

    #[test]
    fn throughput_positive() {
        let data = vec![0u8; 4096];
        let tp = measure_throughput(4096, 5, || {
            std::hint::black_box(ib_crypto::crc::crc32_ieee(std::hint::black_box(&data)));
        });
        assert!(tp > 1e6, "CRC32 should exceed 1 MB/s, got {tp}");
    }
}
