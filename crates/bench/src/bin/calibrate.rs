//! Calibration sweep (development tool): explores victim load × buffer
//! depth × attacker count to locate the operating point where the paper's
//! Figure 1 queuing blow-up appears. Not part of the reproduced results;
//! see DESIGN.md "calibration" note.

use bench::render_table;
use ib_security::experiments::run_many;
use ib_sim::config::{SimConfig, TrafficConfig};
use ib_sim::time::{MS, US};

fn cfg(rt: f64, be: f64, bufs: u32, attackers: usize) -> SimConfig {
    SimConfig {
        num_attackers: attackers,
        attack_probability: 1.0,
        vl_buffer_packets: bufs,
        traffic: TrafficConfig {
            realtime_load: rt,
            best_effort_load: be,
            realtime_backoff_queue: 8,
        },
        duration: 4 * MS,
        warmup: 400 * US,
        ..SimConfig::default()
    }
}

fn main() {
    let mut rows = Vec::new();
    for &(rt, be) in &[(0.2f64, 0.3f64), (0.25, 0.3), (0.3, 0.3), (0.3, 0.25)] {
        let load = rt + be;
        for &bufs in &[4u32] {
            let configs: Vec<SimConfig> = [0usize, 1, 4]
                .iter()
                .map(|&a| cfg(rt, be, bufs, a))
                .collect();
            let reports = run_many(configs);
            for (a, r) in [0usize, 1, 4].iter().zip(reports.iter()) {
                rows.push(vec![
                    format!("{load:.1}"),
                    bufs.to_string(),
                    a.to_string(),
                    format!("{:.2}", r.realtime.queuing.mean()),
                    format!("{:.2}", r.best_effort.queuing.mean()),
                    format!("{:.2}", r.realtime.network.mean()),
                    format!("{:.2}", r.best_effort.network.mean()),
                    r.backoff_skips.to_string(),
                    r.hca_blocked.to_string(),
                ]);
            }
        }
    }
    println!(
        "{}",
        render_table(
            &["load", "bufs", "atk", "rtQ", "beQ", "rtN", "beN", "skips", "blocked"],
            &rows
        )
    );
}
