//! Figure 6 — message-authentication overhead with key initialization:
//! queuing and network delay, "No Key" vs "With Key", input loads 40–70 %.
//!
//! Paper shape: the two bars are nearly identical at every load (QP-level
//! key exchange costs one RTT per pair, amortized over many messages;
//! per-message MAC costs one pipeline cycle per end node).
//!
//! Usage: `fig6 [--quick|--smoke] [--all-modes] [--seeds K] [--seed S]`
//! (`--smoke` is an alias for `--quick`, matching the other gated binaries).
//! (`--all-modes` adds the partition-level ablation row).

use bench::{arg_value, bench_doc, render_table, seed_arg, write_bench_json};
use ib_runtime::{Json, ToJson};
use ib_security::experiments::{
    fig6_config, run_grid_seed_averaged, Fig6Row, DEFAULT_SEEDS, FIG5_LOADS,
};
use ib_sim::config::AuthMode;
use ib_sim::time::{MS, US};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "--smoke");
    let modes: &[AuthMode] = if args.iter().any(|a| a == "--all-modes") {
        &[AuthMode::None, AuthMode::PartitionLevel, AuthMode::QpLevel]
    } else {
        &[AuthMode::None, AuthMode::QpLevel]
    };
    let seeds: u64 = arg_value(&args, "--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 2 } else { DEFAULT_SEEDS });
    let seed = seed_arg(&args);

    // One flattened (load × mode × seed) work list for the sharded runner.
    let mut bases = Vec::new();
    let mut cells = Vec::new();
    for &load in &FIG5_LOADS {
        for &mode in modes {
            let mut cfg = fig6_config(load, mode);
            cfg.seed = seed;
            if quick {
                cfg.duration = 4 * MS;
                cfg.warmup = 400 * US;
            }
            bases.push(cfg);
            cells.push((load, mode));
        }
    }
    let rows: Vec<Fig6Row> = run_grid_seed_averaged(&bases, seeds)
        .into_iter()
        .zip(cells)
        .map(|(p, (load, mode))| Fig6Row {
            input_load: load,
            mode,
            queuing_us: p.legit_queuing_us,
            network_us: p.legit_network_us,
            queuing_stddev_us: p.legit_queuing_stddev_us,
        })
        .collect();

    println!("Figure 6. Message authentication overhead with key initialization (seed {seed})");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r: &Fig6Row| {
            vec![
                format!("{:.0}%", r.input_load * 100.0),
                r.mode.label().to_string(),
                format!("{:.2}", r.queuing_us),
                format!("{:.2}", r.network_us),
                format!("{:.2}", r.queuing_stddev_us),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "load",
                "mode",
                "queuing (us)",
                "network (us)",
                "queuing stddev"
            ],
            &table
        )
    );

    // ---- shape assertions: overhead is marginal at every load ----
    for &load in &[0.4, 0.5, 0.6, 0.7] {
        let no_key = rows
            .iter()
            .find(|r| (r.input_load - load).abs() < 1e-9 && r.mode == AuthMode::None)
            .unwrap();
        let with_key = rows
            .iter()
            .find(|r| (r.input_load - load).abs() < 1e-9 && r.mode == AuthMode::QpLevel)
            .unwrap();
        let base_total = no_key.queuing_us + no_key.network_us;
        let with_total = with_key.queuing_us + with_key.network_us;
        let overhead = with_total - base_total;
        // Marginal = a few µs absolute at moderate load, or a small
        // relative slice once the fabric is near saturation (where seed
        // noise and queue amplification dwarf any fixed threshold). Quick
        // runs amortize the per-pair key-exchange RTT over far fewer
        // messages, so they get a wider relative band.
        let rel = if quick { 0.20 } else { 0.12 };
        assert!(
            overhead < 5.0f64.max(base_total * rel),
            "overhead at {load} must be marginal, got {overhead:.2} us on base {base_total:.2}"
        );
    }
    println!("OK: Figure 6 shape holds (With Key ~ No Key at every load).");

    let doc = bench_doc(
        "fig6",
        seed,
        Json::obj([
            ("all_modes", (modes.len() > 2).to_json()),
            ("seeds_per_point", seeds.to_json()),
            ("quick", quick.to_json()),
        ]),
        rows.iter().map(Fig6Row::to_json).collect(),
    );
    let path = write_bench_json("fig6", &doc).expect("write BENCH_fig6.json");
    println!("wrote {}", path.display());
}
