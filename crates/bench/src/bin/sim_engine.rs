//! Event-engine throughput: the scheduler microbenchmark and the whole
//! simulator, measured together.
//!
//! Two groups:
//!
//! * `scheduler/*` — a deterministic hold-model workload (prefill, then
//!   pop-one/push-one at the popped time plus a drawn delta, then drain)
//!   over three priority-queue arms:
//!   - `calendar` — the production [`EventQueue`]: timing wheel over
//!     compact keys with a binary-heap overflow;
//!   - `heap` — [`HeapQueue`], the same arena + compact keys under a
//!     plain binary heap (the property-test oracle);
//!   - `heap-inline` — the pre-overhaul design: a binary heap moving a
//!     ~104-byte payload inline through every sift, kept only to record
//!     the trajectory the overhaul bought.
//!
//!   All arms replay the identical op script and must pop the identical
//!   `(time, payload)` stream (asserted before anything is timed).
//! * `engine/*` — `Simulator::run_counted` over figure-sized cells
//!   (baseline, attack with no filtering / DPT / SIF), reporting
//!   simulator events per wall-second.
//!
//! The acceptance gate mirrors `mac_table4`: arms run interleaved sample
//! by sample so clock throttling cancels in *paired* ratios, and the
//! calendar queue must not lose to the compact-key heap on the hold
//! workload (median paired ratio under the bar, or best paired sample at
//! effective parity).
//!
//! Usage: `sim_engine [--smoke] [--seed S]`

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use bench::seed_arg;
use ib_mgmt::enforcement::EnforcementKind;
use ib_runtime::bench::{BenchConfig, Harness};
use ib_runtime::{Json, ToJson};
use ib_sim::config::SimConfig;
use ib_sim::engine::Simulator;
use ib_sim::event::{EventQueue, HeapQueue, BUCKET_WIDTH_PS, HORIZON_PS};
use ib_sim::parallel::ParSimulator;
use ib_sim::time::{SimTime, MS, US};

/// Scheduler arms, baseline-last display order (calendar is the product).
const ARMS: [&str; 3] = ["calendar", "heap", "heap-inline"];

/// One op script entry: the delta (ps) to add to the popped event's time
/// when re-pushing. The mix matches the simulator's event population:
/// mostly sub-bucket wire/credit deltas, a same-tick burst share, and a
/// far-future tail (attack epochs, key-exchange RTTs) past the wheel
/// horizon.
fn make_deltas(seed: ib_runtime::Seed, steps: usize) -> Vec<SimTime> {
    let mut rng = seed.rng();
    (0..steps)
        .map(|_| match rng.gen_range(0..10u64) {
            0 => 0,                                         // same-tick burst
            1 => HORIZON_PS + rng.gen_range(0..HORIZON_PS), // overflow path
            _ => 1 + rng.gen_range(0..4 * BUCKET_WIDTH_PS), // near future
        })
        .collect()
}

/// The pre-overhaul payload shape: what the old queue memcpy'd per sift.
#[derive(Clone)]
struct InlinePayload {
    _header: [u64; 12],
    tag: u64,
}

/// The pre-overhaul scheduler: payloads ride inline in the heap entries,
/// with the (time, seq) prefix carrying the real order — the shape the
/// compact-key arena design replaced.
struct InlineHeap {
    heap: BinaryHeap<Reverse<(SimTime, u64, InlineEntry)>>,
    seq: u64,
}

struct InlineEntry(InlinePayload);

impl PartialEq for InlineEntry {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl Eq for InlineEntry {}
impl PartialOrd for InlineEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InlineEntry {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

/// The one shape all three arms implement, so the workload runner and the
/// equivalence gate are written once.
trait Sched {
    fn push(&mut self, at: SimTime, tag: u64);
    fn pop(&mut self) -> Option<(SimTime, u64)>;
}

impl Sched for EventQueue<u64> {
    fn push(&mut self, at: SimTime, tag: u64) {
        EventQueue::push(self, at, tag);
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        EventQueue::pop(self)
    }
}

impl Sched for HeapQueue<u64> {
    fn push(&mut self, at: SimTime, tag: u64) {
        HeapQueue::push(self, at, tag);
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        HeapQueue::pop(self)
    }
}

impl Sched for InlineHeap {
    fn push(&mut self, at: SimTime, tag: u64) {
        self.seq += 1;
        self.heap.push(Reverse((
            at,
            self.seq,
            InlineEntry(InlinePayload {
                _header: [tag; 12],
                tag,
            }),
        )));
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        self.heap.pop().map(|Reverse((t, _, e))| (t, e.0.tag))
    }
}

/// Run the hold-model workload; returns the popped `(time, payload)`
/// stream and the total op count (pushes + pops).
fn run_workload<S: Sched + ?Sized>(
    q: &mut S,
    prefill: &[SimTime],
    deltas: &[SimTime],
) -> (Vec<(SimTime, u64)>, u64) {
    let mut tag: u64 = 0;
    let mut popped = Vec::with_capacity(prefill.len() + deltas.len());
    for &t in prefill {
        q.push(t, tag);
        tag += 1;
    }
    for &dt in deltas {
        let (t, p) = q.pop().expect("hold model keeps the queue non-empty");
        popped.push((t, p));
        q.push(t + dt, tag);
        tag += 1;
    }
    while let Some(item) = q.pop() {
        popped.push(item);
    }
    let ops = 2 * (prefill.len() + deltas.len()) as u64;
    (popped, ops)
}

fn engine_cfg(kind: EnforcementKind, attackers: usize, duration_ps: SimTime) -> SimConfig {
    SimConfig {
        enforcement: kind,
        num_attackers: attackers,
        attack_probability: 1.0,
        duration: duration_ps,
        warmup: 100 * US,
        ..SimConfig::default()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--quick");
    let seed = seed_arg(&args);
    let (config, prefill_n, steps, engine_ps, engine_reps) = if smoke {
        (
            BenchConfig {
                warmup: Duration::from_millis(20),
                measurement: Duration::from_millis(80),
                samples: 5,
            },
            1024,
            20_000,
            MS / 2,
            2u32,
        )
    } else {
        (
            BenchConfig {
                warmup: Duration::from_millis(200),
                measurement: Duration::from_millis(300),
                samples: 15,
            },
            4096,
            200_000,
            MS,
            5u32,
        )
    };

    // Deterministic op script, shared by every arm.
    let mut prefill_rng = seed.stream(1).rng();
    let prefill: Vec<SimTime> = (0..prefill_n)
        .map(|_| prefill_rng.gen_range(0..2 * HORIZON_PS))
        .collect();
    let deltas = make_deltas(seed.stream(2), steps);

    // ---- equivalence gate: all arms pop the identical stream ----
    let fresh: [fn() -> Box<dyn Sched>; 3] = [
        || Box::new(EventQueue::<u64>::new()),
        || Box::new(HeapQueue::<u64>::new()),
        || {
            Box::new(InlineHeap {
                heap: BinaryHeap::new(),
                seq: 0,
            })
        },
    ];
    let streams: Vec<Vec<(SimTime, u64)>> = fresh
        .iter()
        .map(|new| run_workload(&mut *new(), &prefill, &deltas).0)
        .collect();
    assert_eq!(
        streams[0], streams[1],
        "calendar and compact-key heap must pop the identical (time, payload) stream"
    );
    assert_eq!(
        streams[0], streams[2],
        "calendar and inline heap must pop the identical (time, payload) stream"
    );
    let total_ops = 2 * (prefill.len() + deltas.len()) as u64;
    println!(
        "OK: all scheduler arms pop the identical {}-event stream ({total_ops} ops).\n",
        streams[0].len()
    );

    // ---- scheduler timing: arms interleaved sample by sample ----
    // This host's clock throttles by tens of percent over seconds, so a
    // frequency dip lands on all arms of the adjacent sample triple, not
    // on whichever arm happened to run in that window (same idiom as
    // mac_table4). One workload replay is milliseconds, so batch = 1.
    let mut harness = Harness::new(config);
    let mut sample_ns: [Vec<f64>; 3] = [const { Vec::new() }; 3];
    let warmup_end = Instant::now() + config.warmup;
    while Instant::now() < warmup_end {
        for new in &fresh {
            std::hint::black_box(run_workload(&mut *new(), &prefill, &deltas));
        }
    }
    for _ in 0..config.samples {
        for (a, new) in fresh.iter().enumerate() {
            let start = Instant::now();
            std::hint::black_box(run_workload(&mut *new(), &prefill, &deltas));
            sample_ns[a].push(start.elapsed().as_nanos() as f64);
        }
    }
    for (a, &arm) in ARMS.iter().enumerate() {
        // "Bytes" are scheduler ops: the throughput column reads as
        // operations per second.
        harness
            .group("scheduler")
            .throughput_bytes(total_ops)
            .record(arm, &sample_ns[a]);
    }

    // ---- engine timing: whole simulations, events per wall-second ----
    // `threads == 0` is the serial driver; non-zero cells run the same
    // config through the sharded windowed engine (`ParSimulator`) and
    // are asserted report-identical to their serial counterpart before
    // their throughput is recorded.
    let cells = [
        ("baseline", EnforcementKind::NoFiltering, 0usize, 0usize),
        ("attack-nofilter", EnforcementKind::NoFiltering, 4, 0),
        ("attack-dpt", EnforcementKind::Dpt, 4, 0),
        ("attack-sif", EnforcementKind::Sif, 4, 0),
        ("baseline-par4", EnforcementKind::NoFiltering, 0, 4),
        ("attack-sif-par4", EnforcementKind::Sif, 4, 4),
    ];
    let mut engine_events: Vec<u64> = Vec::new();
    let mut serial_reports: Vec<(EnforcementKind, usize, String)> = Vec::new();
    for &(label, kind, attackers, threads) in &cells {
        let mut events = 0u64;
        let mut ns: Vec<f64> = Vec::new();
        let mut report_json = String::new();
        for _ in 0..engine_reps {
            let cfg = engine_cfg(kind, attackers, engine_ps);
            if threads == 0 {
                let sim = Simulator::new(cfg);
                let start = Instant::now();
                let (report, n) = sim.run_counted();
                ns.push(start.elapsed().as_nanos() as f64);
                report_json = report.to_json().to_string();
                std::hint::black_box(report);
                events = n; // identical every rep (determinism)
            } else {
                let mut sim = ParSimulator::with_threads(cfg, threads);
                let start = Instant::now();
                let report = sim.run();
                ns.push(start.elapsed().as_nanos() as f64);
                report_json = report.to_json().to_string();
                std::hint::black_box(report);
                events = sim.events_processed();
            }
        }
        if threads == 0 {
            serial_reports.push((kind, attackers, report_json));
        } else {
            let (_, _, serial) = serial_reports
                .iter()
                .find(|(k, a, _)| *k == kind && *a == attackers)
                .expect("parallel cells follow their serial counterpart");
            assert_eq!(
                serial, &report_json,
                "{label}: sharded engine report diverged from serial"
            );
        }
        engine_events.push(events);
        harness
            .group("engine")
            .throughput_bytes(events)
            .record(label, &ns);
    }

    // ---- acceptance gate: calendar ≥ heap on the hold workload ----
    // Median *paired* ratio (calendar / heap within each sample triple),
    // with the smoke bars widened: 5-sample 2 ms windows gate structure,
    // not 5 %-level perf claims. The disjunction covers throttle noise: a
    // genuinely slower calendar queue would both push the median past the
    // bar and never win a paired triple.
    let (med_bar, best_bar) = if smoke { (1.25, 1.10) } else { (1.05, 1.00) };
    let mut ratios: Vec<f64> = sample_ns[0]
        .iter()
        .zip(&sample_ns[1])
        .map(|(c, h)| c / h)
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (med, best) = (ratios[ratios.len() / 2], ratios[0]);
    assert!(
        med <= med_bar || best <= best_bar,
        "calendar queue must keep pace with the compact-key heap \
         (median paired ratio {med:.3}, best {best:.3})"
    );
    println!(
        "\nOK: calendar queue holds against the heap baseline \
         (median paired ratio {med:.3}, best {best:.3})."
    );

    let path = harness
        .write_json(
            "sim_engine",
            "sim_engine",
            seed,
            Json::obj([
                ("arms", Json::arr(ARMS.iter().map(|a| a.to_json()))),
                ("prefill", (prefill_n as u64).to_json()),
                ("steps", (steps as u64).to_json()),
                ("scheduler_ops", total_ops.to_json()),
                (
                    "engine_cells",
                    Json::arr(cells.iter().map(|&(l, _, _, _)| l.to_json())),
                ),
                (
                    "engine_threads",
                    Json::arr(cells.iter().map(|&(_, _, _, t)| (t as u64).to_json())),
                ),
                (
                    "engine_events",
                    Json::arr(engine_events.iter().map(|&e| e.to_json())),
                ),
                ("engine_duration_ps", engine_ps.to_json()),
                ("smoke", smoke.to_json()),
            ]),
        )
        .expect("write BENCH_sim_engine.json");
    println!("wrote {}", path.display());
}
