//! Scale-out sweep — node count × topology × engine. A seeded random
//! permutation of bulk flows crosses each generated fabric (2-D mesh,
//! k-ary fat-tree, dragonfly minimal and Valiant), once through the
//! packet engine (ground truth: credits, arbitration, store-and-forward)
//! and once through the `ib-flow` max-min fluid model. The figure shows
//! where the fast path earns its keep: identical paths and near-identical
//! completion times at a tiny fraction of the events.
//!
//! Full mode climbs to ≥1024 HCAs (fat-tree k=16 → 1024 hosts, dragonfly
//! (a=8, p=4, h=4) → 1056 hosts) on both engines. Smoke mode keeps the
//! fabrics small and zeroes the wall-clock fields so two same-seed runs
//! emit byte-identical `BENCH_fig_scale.json` (the ci.sh determinism
//! gate).
//!
//! The packet engine also runs sharded (`ib_sim::ParSimulator`) at each
//! thread count in the `threads` axis (default 1/2/4, overridable with
//! `IB_THREADS=a,b,c`), reporting `speedup_vs_serial` and per-thread
//! event rates. Every parallel run is asserted identical to the serial
//! oracle — completions, event count, and arena high-water — at every
//! thread count, in both modes; full mode additionally gates ≥2×
//! speedup at 4 threads on the 1024-host fat-tree.
//!
//! Usage: `fig_scale [--smoke] [--seed S]`

use bench::{bench_doc, render_table, seed_arg, write_bench_json};
use ib_flow::{simulate, Flow};
use ib_runtime::{Json, Rng, Seed, ToJson};
use ib_sim::{ParSimulator, SimConfig, SimTime, Simulator, TopoSpec};
use std::time::Instant;

/// Full-mode speedup floor for the sharded engine at 4 threads on the
/// 1024-host fat-tree permutation — applied when the host actually has
/// that many CPUs. On narrower machines parallel scaling is unobservable,
/// so the gate degrades to "sharding must not lose to serial" and the
/// JSON records `host_cpus` so readers can interpret the numbers.
const SPEEDUP_FLOOR: f64 = 2.0;
const SPEEDUP_FLOOR_DEGRADED: f64 = 0.95;
const SPEEDUP_ARM: &str = "fat-tree-16";
const SPEEDUP_THREADS: usize = 4;

/// Packet-vs-flow agreement bound on the calibration arm (the 2×2 mesh),
/// mirroring the `ib-flow` crossval gate.
const CROSSVAL_TOLERANCE: f64 = 0.25;

/// One swept fabric.
struct Arm {
    label: &'static str,
    spec: TopoSpec,
    /// Run the packet engine too (the fluid model always runs).
    packet: bool,
}

fn arms(smoke: bool) -> Vec<Arm> {
    let df = |a, p, h, valiant| TopoSpec::Dragonfly { a, p, h, valiant };
    if smoke {
        vec![
            Arm {
                label: "mesh-2",
                spec: TopoSpec::Mesh,
                packet: true,
            },
            Arm {
                label: "mesh-4",
                spec: TopoSpec::Mesh,
                packet: true,
            },
            Arm {
                label: "fat-tree-4",
                spec: TopoSpec::FatTree { k: 4 },
                packet: true,
            },
            Arm {
                label: "dragonfly-2-2-1",
                spec: df(2, 2, 1, false),
                packet: true,
            },
            Arm {
                label: "dragonfly-2-2-1-val",
                spec: df(2, 2, 1, true),
                packet: true,
            },
        ]
    } else {
        vec![
            Arm {
                label: "mesh-2",
                spec: TopoSpec::Mesh,
                packet: true,
            },
            Arm {
                label: "mesh-4",
                spec: TopoSpec::Mesh,
                packet: true,
            },
            Arm {
                label: "mesh-8",
                spec: TopoSpec::Mesh,
                packet: true,
            },
            Arm {
                label: "fat-tree-4",
                spec: TopoSpec::FatTree { k: 4 },
                packet: true,
            },
            Arm {
                label: "fat-tree-8",
                spec: TopoSpec::FatTree { k: 8 },
                packet: true,
            },
            Arm {
                label: "fat-tree-16",
                spec: TopoSpec::FatTree { k: 16 },
                packet: true,
            },
            Arm {
                label: "dragonfly-4-2-2",
                spec: df(4, 2, 2, false),
                packet: true,
            },
            Arm {
                label: "dragonfly-8-4-4",
                spec: df(8, 4, 4, false),
                packet: true,
            },
            Arm {
                label: "dragonfly-8-4-4-val",
                spec: df(8, 4, 4, true),
                packet: true,
            },
        ]
    }
}

fn config_for(seed: Seed, arm: &Arm) -> SimConfig {
    let mut cfg = SimConfig {
        topology: arm.spec,
        // One partition so flows pass the receive-side P_Key check; the
        // permutation is the only load in both engines.
        num_partitions: 1,
        seed,
        ..SimConfig::default()
    };
    if let (TopoSpec::Mesh, Some(dim)) = (arm.spec, arm.label.strip_prefix("mesh-")) {
        cfg.mesh_dim = dim.parse().expect("mesh arm label carries its dim");
    }
    cfg.traffic.realtime_load = 0.0;
    cfg.traffic.best_effort_load = 0.0;
    cfg
}

/// A seeded random permutation with no fixed points: node `i` sends one
/// `bytes`-sized flow to `perm[i]`.
fn permutation_flows(n: usize, bytes: u64, seed: Seed) -> Vec<Flow> {
    let mut rng = Rng::from_seed(Seed(seed.0 ^ 0x5CA1_AB1E));
    let mut perm: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut perm);
    // Break self-sends by swapping with a neighbor (cyclically), which
    // cannot create a new fixed point since n ≥ 2.
    for i in 0..n {
        if perm[i] == i {
            let j = (i + 1) % n;
            perm.swap(i, j);
        }
    }
    (0..n)
        .map(|src| Flow {
            src,
            dst: perm[src],
            bytes,
        })
        .collect()
}

/// Sorted-sample percentile (nearest-rank, deterministic).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The per-engine measurements of one arm.
struct Run {
    engine: String,
    /// Worker threads (1 for the serial engine and the fluid model).
    threads: usize,
    completions_ps: Vec<f64>,
    /// Packet: scheduler events handled. Flow: rate-recompute epochs.
    events: u64,
    /// Packet: packet-arena high-water slots. Flow: path-table entries.
    peak_mem_items: u64,
    wall_ms: f64,
}

/// CPUs actually usable by this process (affinity/cgroup-aware).
fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The `threads` axis: `IB_THREADS=a,b,c` overrides the default 1/2/4.
fn thread_counts() -> Vec<usize> {
    match std::env::var("IB_THREADS") {
        Ok(v) => v
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("IB_THREADS: bad thread count {t:?}"))
            })
            .collect(),
        Err(_) => vec![1, 2, 4],
    }
}

fn run_packet(cfg: &SimConfig, flows: &[Flow]) -> Run {
    let start = Instant::now();
    let mut sim = Simulator::new(cfg.clone());
    for f in flows {
        sim.post_flow(f.src, f.dst, f.bytes);
    }
    sim.run_hosts_until(SimTime::MAX);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let completions_ps: Vec<f64> = sim
        .flows()
        .iter()
        .map(|f| {
            f.completed_at
                .expect("permutation flows complete: one partition, no faults") as f64
        })
        .collect();
    Run {
        engine: "packet".into(),
        threads: 1,
        completions_ps,
        events: sim.events_processed(),
        peak_mem_items: sim.peak_packets() as u64,
        wall_ms,
    }
}

/// The sharded engine at an explicit thread count; asserted bit-identical
/// to the serial run by the caller.
fn run_parallel(cfg: &SimConfig, flows: &[Flow], threads: usize) -> Run {
    let start = Instant::now();
    let mut sim = ParSimulator::with_threads(cfg.clone(), threads);
    for f in flows {
        sim.post_flow(f.src, f.dst, f.bytes);
    }
    sim.run();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let completions_ps: Vec<f64> = sim
        .flows()
        .iter()
        .map(|f| {
            f.completed_at
                .expect("permutation flows complete: one partition, no faults") as f64
        })
        .collect();
    Run {
        engine: "packet-par".into(),
        threads,
        completions_ps,
        events: sim.events_processed(),
        peak_mem_items: sim.peak_packets() as u64,
        wall_ms,
    }
}

fn run_flow(cfg: &SimConfig, flows: &[Flow]) -> Run {
    let topo = cfg.build_topology();
    let start = Instant::now();
    let rep = simulate(&*topo, cfg, flows);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    // Path-table entries are the fluid model's dominant allocation: one
    // link id per hop per flow.
    let path_entries: u64 = flows
        .iter()
        .map(|f| topo.hops_on_path(f.src, f.dst, ib_sim::flow_hash(f.src, f.dst)) as u64 + 2)
        .sum();
    Run {
        engine: "flow".into(),
        threads: 1,
        completions_ps: rep.completions_ps,
        events: rep.epochs as u64,
        peak_mem_items: path_entries,
        wall_ms,
    }
}

fn point_json(arm: &Arm, cfg: &SimConfig, run: &Run, serial_wall_ms: f64, smoke: bool) -> Json {
    let mut fct = run.completions_ps.clone();
    fct.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let makespan_ps = fct.last().copied().unwrap_or(0.0);
    let topo = cfg.build_topology();
    // Smoke zeroes the wall-clock-derived fields so the double-run
    // byte-diff gate can hold; full mode reports the real numbers.
    let (wall_ms, events_per_sec, speedup) = if smoke {
        (0.0, 0.0, 0.0)
    } else {
        (
            run.wall_ms,
            run.events as f64 / (run.wall_ms / 1e3).max(1e-9),
            serial_wall_ms / run.wall_ms.max(1e-9),
        )
    };
    Json::obj([
        ("arm", arm.label.to_json()),
        ("topology", topo.name().to_json()),
        ("engine", run.engine.to_json()),
        ("threads", (run.threads as u64).to_json()),
        ("nodes", (topo.num_nodes() as u64).to_json()),
        ("switches", (topo.num_switches() as u64).to_json()),
        ("radix", (topo.radix() as u64).to_json()),
        ("diameter", (topo.diameter() as u64).to_json()),
        ("flows", (fct.len() as u64).to_json()),
        ("fct_p50_us", (percentile(&fct, 0.50) / 1e6).to_json()),
        ("fct_p90_us", (percentile(&fct, 0.90) / 1e6).to_json()),
        ("fct_p99_us", (percentile(&fct, 0.99) / 1e6).to_json()),
        ("makespan_us", (makespan_ps / 1e6).to_json()),
        ("events", run.events.to_json()),
        ("peak_mem_items", run.peak_mem_items.to_json()),
        ("wall_ms", wall_ms.to_json()),
        ("events_per_sec", events_per_sec.to_json()),
        (
            "events_per_sec_per_thread",
            (events_per_sec / run.threads.max(1) as f64).to_json(),
        ),
        ("speedup_vs_serial", speedup.to_json()),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--quick");
    let seed = seed_arg(&args);
    let flow_bytes: u64 = if smoke { 16 * 1024 } else { 64 * 1024 };

    let swept = arms(smoke);
    let threads_axis = thread_counts();
    let mut points: Vec<Json> = Vec::new();
    let mut table: Vec<Vec<String>> = Vec::new();
    let mut crossval: Option<(f64, f64)> = None; // mesh-2 (packet, flow) makespan
    let mut biggest = 0usize;
    let mut gate_speedup: Option<f64> = None; // fat-tree-16 @ 4 threads

    for arm in &swept {
        let cfg = config_for(seed, arm);
        let n = cfg.num_nodes();
        biggest = biggest.max(n);
        let flows = permutation_flows(n, flow_bytes, seed);

        let mut runs: Vec<Run> = Vec::new();
        if arm.packet {
            let serial = run_packet(&cfg, &flows);
            for &t in &threads_axis {
                let par = run_parallel(&cfg, &flows, t);
                // The tentpole contract: sharded results are identical
                // to the serial oracle at every thread count.
                assert_eq!(
                    serial.completions_ps, par.completions_ps,
                    "{}: parallel completions diverged at {t} threads",
                    arm.label
                );
                assert_eq!(
                    serial.events, par.events,
                    "{}: parallel event count diverged at {t} threads",
                    arm.label
                );
                assert_eq!(
                    serial.peak_mem_items, par.peak_mem_items,
                    "{}: parallel arena high-water diverged at {t} threads",
                    arm.label
                );
                if arm.label == SPEEDUP_ARM && t == SPEEDUP_THREADS {
                    gate_speedup = Some(serial.wall_ms / par.wall_ms.max(1e-9));
                }
                runs.push(par);
            }
            runs.insert(0, serial);
        }
        runs.push(run_flow(&cfg, &flows));
        // Determinism spot-check: the fluid model is pure arithmetic.
        let again = run_flow(&cfg, &flows);
        assert_eq!(
            runs.last().unwrap().completions_ps,
            again.completions_ps,
            "{}: flow model must be bit-deterministic",
            arm.label
        );

        if arm.label == "mesh-2" {
            let pkt = runs.iter().find(|r| r.engine == "packet").unwrap();
            let flw = runs.iter().find(|r| r.engine == "flow").unwrap();
            let span = |r: &Run| r.completions_ps.iter().fold(0.0f64, |a, &b| a.max(b));
            crossval = Some((span(pkt), span(flw)));
        }

        let serial_wall = runs
            .iter()
            .find(|r| r.engine == "packet")
            .map(|r| r.wall_ms);
        for run in &runs {
            // Speedup baseline: the serial packet engine for its sharded
            // variants; each other engine is its own baseline (1.0).
            let base = if run.engine == "packet-par" {
                serial_wall.expect("packet-par implies a serial packet run")
            } else {
                run.wall_ms
            };
            let p = point_json(arm, &cfg, run, base, smoke);
            table.push(vec![
                arm.label.to_string(),
                run.engine.clone(),
                run.threads.to_string(),
                p.get("nodes").unwrap().as_u64().unwrap().to_string(),
                p.get("switches").unwrap().as_u64().unwrap().to_string(),
                format!("{:.1}", p.get("fct_p50_us").unwrap().as_f64().unwrap()),
                format!("{:.1}", p.get("fct_p99_us").unwrap().as_f64().unwrap()),
                format!("{:.1}", p.get("makespan_us").unwrap().as_f64().unwrap()),
                run.events.to_string(),
                run.peak_mem_items.to_string(),
                if smoke {
                    "-".into()
                } else {
                    format!("{:.0}", run.wall_ms)
                },
                if smoke {
                    "-".into()
                } else {
                    format!(
                        "{:.2}",
                        p.get("speedup_vs_serial").unwrap().as_f64().unwrap()
                    )
                },
            ]);
            points.push(p);
        }
    }

    println!(
        "Scale-out sweep: permutation of {}-KiB flows, packet vs flow engine (seed {seed})",
        flow_bytes / 1024
    );
    println!(
        "{}",
        render_table(
            &[
                "arm",
                "engine",
                "thr",
                "nodes",
                "switches",
                "p50 (us)",
                "p99 (us)",
                "makespan (us)",
                "events",
                "peak mem",
                "wall (ms)",
                "speedup"
            ],
            &table
        )
    );

    // ---- acceptance assertions ----
    let (pkt_span, flw_span) = crossval.expect("mesh-2 calibration arm must run both engines");
    let rel = (pkt_span - flw_span).abs() / pkt_span;
    assert!(
        rel <= CROSSVAL_TOLERANCE,
        "packet vs flow makespan disagree on mesh-2: {pkt_span:.0} vs {flw_span:.0} ({:.1}%)",
        rel * 100.0
    );
    if !smoke {
        assert!(
            biggest >= 1024,
            "full sweep must reach ≥1024 HCAs, peaked at {biggest}"
        );
        if threads_axis.contains(&SPEEDUP_THREADS) {
            let sp = gate_speedup
                .expect("full sweep includes the fat-tree-16 arm at the gated thread count");
            let host = host_cpus();
            let floor = if host >= SPEEDUP_THREADS {
                SPEEDUP_FLOOR
            } else {
                SPEEDUP_FLOOR_DEGRADED
            };
            assert!(
                sp >= floor,
                "sharded engine must reach {floor}x at {SPEEDUP_THREADS} threads \
                 on {SPEEDUP_ARM} ({host} host CPUs), got {sp:.2}x"
            );
            println!(
                "speedup gate: {sp:.2}x at {SPEEDUP_THREADS} threads on {SPEEDUP_ARM} \
                 (floor {floor}x, {host} host CPUs)"
            );
        }
    }

    println!(
        "OK: every flow completed on every fabric; packet vs flow within {:.1}% on mesh-2; \
         sharded engine identical to serial at {} thread count(s); largest fabric {biggest} HCAs.",
        rel * 100.0,
        threads_axis.len()
    );

    let doc = bench_doc(
        "fig_scale",
        seed,
        Json::obj([
            (
                "arms",
                Json::arr(swept.iter().map(|a| {
                    Json::obj([
                        ("label", a.label.to_json()),
                        ("topology", a.spec.to_json()),
                        ("packet_engine", a.packet.to_json()),
                    ])
                })),
            ),
            ("flow_bytes", flow_bytes.to_json()),
            (
                "threads",
                Json::arr(threads_axis.iter().map(|&t| (t as u64).to_json())),
            ),
            (
                "ib_threads_env",
                match std::env::var("IB_THREADS") {
                    Ok(v) => v.to_json(),
                    Err(_) => Json::Null,
                },
            ),
            ("host_cpus", (host_cpus() as u64).to_json()),
            ("workload", "random permutation, no fixed points".to_json()),
            ("base", config_for(seed, &swept[0]).to_json()),
            ("crossval_rel_err", rel.to_json()),
            ("smoke", smoke.to_json()),
        ]),
        points,
    );
    let path = write_bench_json("fig_scale", &doc).expect("write BENCH_fig_scale.json");
    println!("wrote {}", path.display());
}
