//! Figure 5 — delay of non-attacking traffic under a 4-attacker DoS for
//! No-Filtering / DPT / IF / SIF, at input loads 40–70 %.
//!
//! Paper shape: filtering methods beat No-Filtering; IF ≤ DPT (no per-hop
//! lookups); SIF ≈ IF, slightly worse at 40–50 % load because the 1 %
//! attack probability lets DoS traffic into the fabric until the SM
//! programs the filter, and slightly better once lookups dominate.
//!
//! Usage: `fig5 [--quick|--smoke] [--attack-prob P] [--seeds K] [--seed S]`
//! (P defaults to the paper's 0.01; sweep it for the DESIGN.md ablation;
//! `--smoke` is an alias for `--quick`).

use bench::{arg_value, bench_doc, render_table, seed_arg, write_bench_json};
use ib_runtime::{Json, ToJson};
use ib_security::experiments::{
    fig5_config, run_grid_seed_averaged, Fig5Row, DEFAULT_SEEDS, FIG5_KINDS, FIG5_LOADS,
};
use ib_sim::time::{MS, US};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "--smoke");
    let attack_prob: f64 = arg_value(&args, "--attack-prob")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.01);
    let seeds: u64 = arg_value(&args, "--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 2 } else { DEFAULT_SEEDS });
    let seed = seed_arg(&args);

    // Flatten the (load × method) grid and hand it to the sharded runner
    // in a single call; `cells` remembers which base produced which point.
    let mut bases = Vec::new();
    let mut cells = Vec::new();
    for &load in &FIG5_LOADS {
        for &kind in &FIG5_KINDS {
            let mut cfg = fig5_config(load, kind);
            cfg.seed = seed;
            cfg.attack_probability = attack_prob;
            if quick {
                cfg.duration = 4 * MS;
                cfg.warmup = 400 * US;
            }
            bases.push(cfg);
            cells.push((load, kind));
        }
    }
    let rows: Vec<Fig5Row> = run_grid_seed_averaged(&bases, seeds)
        .into_iter()
        .zip(cells)
        .map(|(p, (load, kind))| Fig5Row {
            input_load: load,
            enforcement: kind,
            network_us: p.legit_network_us,
            queuing_us: p.legit_queuing_us,
            stddev_us: p.legit_queuing_stddev_us,
            filter_drops: p.filter_drops,
            hca_blocked: p.hca_blocked,
        })
        .collect();

    println!(
        "Figure 5. Delay comparison: No Filtering / DPT / IF / SIF \
         (attack prob {attack_prob}, seed {seed})"
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r: &Fig5Row| {
            vec![
                format!("{:.0}%", r.input_load * 100.0),
                r.enforcement.label().to_string(),
                format!("{:.2}", r.queuing_us),
                format!("{:.2}", r.network_us),
                format!("{:.2}", r.queuing_us + r.network_us),
                format!("{:.2}", r.stddev_us),
                r.filter_drops.to_string(),
                r.hca_blocked.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "load",
                "method",
                "queuing (us)",
                "network (us)",
                "total (us)",
                "stddev (us)",
                "filter drops",
                "HCA blocked"
            ],
            &table
        )
    );

    // ---- shape assertions at the highest load ----
    let at = |load: f64, label: &str| -> &Fig5Row {
        rows.iter()
            .find(|r| (r.input_load - load).abs() < 1e-9 && r.enforcement.label() == label)
            .expect("cell exists")
    };
    for &load in &[0.4, 0.7] {
        let nf = at(load, "No Filtering");
        let ifr = at(load, "IF");
        let total = |r: &Fig5Row| r.queuing_us + r.network_us;
        // At the paper's 1 % attack probability the filtering margin is
        // small, and smoke-mode seed counts leave placement noise larger
        // than IF's lookup overhead — so allow a slim relative tolerance.
        let tol = 1.0 + 0.02 * total(nf);
        assert!(
            total(ifr) <= total(nf) + tol,
            "IF must not exceed No-Filtering at {load}: {} vs {}",
            total(ifr),
            total(nf)
        );
    }
    // DPT never beats IF (per-hop lookups cost strictly more); same slim
    // relative tolerance as above — at smoke-mode seed counts the
    // placement stddev dwarfs the lookup margin.
    for &load in &[0.4, 0.5, 0.6, 0.7] {
        let dpt = at(load, "DPT");
        let ifr = at(load, "IF");
        let tol = 1.0 + 0.02 * (dpt.queuing_us + dpt.network_us);
        assert!(
            dpt.queuing_us + dpt.network_us + tol >= ifr.queuing_us + ifr.network_us,
            "IF should be at or below DPT at {load}"
        );
    }
    println!("OK: Figure 5 ordering holds (filtering <= no filtering; IF <= DPT; SIF ~ IF).");

    let doc = bench_doc(
        "fig5",
        seed,
        Json::obj([
            ("attack_probability", attack_prob.to_json()),
            ("seeds_per_point", seeds.to_json()),
            ("quick", quick.to_json()),
        ]),
        rows.iter().map(Fig5Row::to_json).collect(),
    );
    let path = write_bench_json("fig5", &doc).expect("write BENCH_fig5.json");
    println!("wrote {}", path.display());
}
