//! RDMA-over-fabric experiment — SEND / RDMA WRITE / RDMA READ between
//! two HCAs of the 16-node mesh, swept over link loss and retransmission
//! strategy, with a Figure-5 attacker flooding the fabric and an on-path
//! replay attacker re-injecting captured data packets.
//!
//! The point of the figure: the verbs survive the fabric. Segmented
//! messages reassemble despite per-link loss and attack congestion, every
//! arm reaches 100% eventual delivery, the replay window admits zero
//! attacker duplicates even though retransmits are byte-identical to
//! replays, and selective repeat beats go-back-N on goodput once loss is
//! high enough that a single drop no longer implies every later segment
//! must be resent.
//!
//! Usage: `fig_rdma [--smoke] [--messages N] [--seed S]`

use bench::{arg_value, bench_doc, render_table, seed_arg, write_bench_json};
use ib_runtime::{Json, ToJson};
use ib_security::ChannelSecurity;
use ib_sim::time::MS;
use ib_sim::{AttackKeys, FaultConfig};
use ib_transport::{run_fabric_sim, FabricReport, FabricSimConfig, RdmaOp, RetransmitMode};

/// Link loss probabilities swept per op (0–2%).
const LOSSES: [f64; 3] = [0.0, 0.01, 0.02];

/// Retransmission strategies compared at each point.
const MODES: [RetransmitMode; 2] = [RetransmitMode::GoBackN, RetransmitMode::SelectiveRepeat];

/// 1.5 MTUs per message: every message segments (First/Last at least).
const PAYLOAD_LEN: usize = 1536;

fn config_for(
    seed: u64,
    messages: usize,
    op: RdmaOp,
    loss: f64,
    mode: RetransmitMode,
) -> FabricSimConfig {
    let mut cfg = FabricSimConfig {
        seed,
        security: ChannelSecurity::AuthReplay,
        op,
        messages,
        payload_len: PAYLOAD_LEN,
        ..FabricSimConfig::default()
    };
    cfg.rc.retransmit = mode;
    // One full-speed valid-P_Key attacker (Figure 5's worst case: the
    // flood is admitted everywhere) contends with the flow for the
    // fabric, on top of the background realtime/best-effort load.
    cfg.sim.num_attackers = 1;
    cfg.sim.attack_keys = AttackKeys::Valid;
    cfg.sim.attack_probability = 1.0;
    cfg.sim.duration = 5 * MS;
    cfg.sim.fault = FaultConfig::lossy(loss, 50_000);
    cfg
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--quick");
    let messages: usize = arg_value(&args, "--messages")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 16 } else { 48 });
    let seed = seed_arg(&args);

    let mut points: Vec<(RdmaOp, f64, RetransmitMode, FabricReport)> = Vec::new();
    for op in RdmaOp::ALL {
        for &loss in &LOSSES {
            for &mode in &MODES {
                let cfg = config_for(seed.0, messages, op, loss, mode);
                points.push((op, loss, mode, run_fabric_sim(&cfg)));
            }
        }
    }

    println!(
        "RDMA verbs over the attacked mesh: goodput / latency / replay outcome \
         (seed {seed}, {messages} x {PAYLOAD_LEN} B ops/point)"
    );
    let table: Vec<Vec<String>> = points
        .iter()
        .map(|(op, loss, mode, r)| {
            vec![
                op.label().to_string(),
                format!("{:.1}%", loss * 100.0),
                mode.label().to_string(),
                format!("{}/{}", r.delivered, r.expected),
                format!("{:.3}", r.goodput_gbps),
                format!("{:.2}", r.latency_us.mean()),
                r.retransmits.to_string(),
                r.ooo_buffered.to_string(),
                r.gap_drops.to_string(),
                r.replays_injected.to_string(),
                r.replays_admitted.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "op",
                "loss",
                "retx mode",
                "delivered",
                "goodput (Gb/s)",
                "latency (us)",
                "retrans",
                "ooo buf",
                "gap drops",
                "replays inj",
                "replays admitted"
            ],
            &table
        )
    );

    // ---- acceptance assertions ----
    for (op, loss, mode, r) in &points {
        let tag = format!("{}/{:.1}%/{}", op.label(), loss * 100.0, mode.label());
        assert!(
            r.delivered == r.expected && !r.failed && !r.timed_out,
            "{tag}: 100% eventual delivery required, got {}/{}",
            r.delivered,
            r.expected
        );
        assert_eq!(r.payload_mismatches, 0, "{tag}: every byte verified");
        assert_eq!(
            r.replays_admitted, 0,
            "{tag}: replay window must admit zero attacker replays"
        );
        assert!(r.replays_injected > 0, "{tag}: attacker must be active");
        if *loss > 0.0 {
            assert!(r.retransmits > 0, "{tag}: loss must force retransmits");
        }
        if *op == RdmaOp::Read {
            assert!(r.reads_served > 0, "{tag}: responder served reads");
        }
    }
    // Selective repeat only buffers out of order; go-back-N only drops
    // gaps. At ≥1% loss SR's goodput must not trail GBN in aggregate.
    let sum = |want: RetransmitMode| -> f64 {
        points
            .iter()
            .filter(|(_, loss, mode, _)| *loss >= 0.01 && *mode == want)
            .map(|(_, _, _, r)| r.goodput_gbps)
            .sum()
    };
    let (gbn, sr) = (
        sum(RetransmitMode::GoBackN),
        sum(RetransmitMode::SelectiveRepeat),
    );
    assert!(
        sr >= gbn,
        "selective repeat must not trail go-back-N at >=1% loss (sr {sr:.4} vs gbn {gbn:.4})"
    );
    println!("lossy goodput: selective-repeat {sr:.3} Gb/s vs go-back-N {gbn:.3} Gb/s");

    // Determinism: the same seed reproduces a lossy RDMA WRITE point
    // bit-for-bit.
    let headline = points
        .iter()
        .find(|(op, loss, mode, _)| {
            *op == RdmaOp::Write && *loss == 0.02 && *mode == RetransmitMode::SelectiveRepeat
        })
        .expect("write/2%/sr point exists");
    let again = run_fabric_sim(&config_for(
        seed.0,
        messages,
        RdmaOp::Write,
        0.02,
        RetransmitMode::SelectiveRepeat,
    ));
    assert_eq!(
        headline.3.to_json().to_string(),
        again.to_json().to_string(),
        "identical output across two same-seed runs"
    );
    println!("OK: 100% delivery for every verb; zero admitted replays on the mesh.");

    let doc = bench_doc(
        "fig_rdma",
        seed,
        Json::obj([
            (
                "ops",
                Json::arr(RdmaOp::ALL.iter().map(|o| o.label().to_json())),
            ),
            ("losses", Json::arr(LOSSES.iter().map(|l| l.to_json()))),
            (
                "modes",
                Json::arr(MODES.iter().map(|m| m.label().to_json())),
            ),
            ("messages", (messages as u64).to_json()),
            ("payload_len", (PAYLOAD_LEN as u64).to_json()),
            (
                "base",
                config_for(seed.0, messages, RdmaOp::Send, 0.0, RetransmitMode::GoBackN).to_json(),
            ),
            ("smoke", smoke.to_json()),
        ]),
        points
            .iter()
            .map(|(op, loss, mode, r)| {
                Json::obj([
                    ("op", op.label().to_json()),
                    ("loss", loss.to_json()),
                    ("retransmit", mode.label().to_json()),
                    ("report", r.to_json()),
                ])
            })
            .collect(),
    );
    let path = write_bench_json("fig_rdma", &doc).expect("write BENCH_fig_rdma.json");
    println!("wrote {}", path.display());
}
