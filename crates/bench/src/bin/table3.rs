//! Table 3 — IBA key vulnerability matrix.
//!
//! Prints the threat matrix and *demonstrates* each row end-to-end on the
//! functional fabric: a captured key alone is enough to attack stock IBA
//! (plain-ICRC packets verify), and is no longer enough once the
//! ICRC-as-MAC scheme is enabled.

use bench::render_table;
use ib_crypto::mac::AuthAlgorithm;
use ib_mgmt::keys::VULNERABILITIES;
use ib_packet::{PKey, QKey};
use ib_security::auth::KeyScope;
use ib_security::fabric::{FabricError, SecureFabric};

fn main() {
    println!("Table 3. IBA Key vulnerability");
    let rows: Vec<Vec<String>> = VULNERABILITIES
        .iter()
        .map(|v| {
            let also = if v.also_requires.is_empty() {
                "-".to_string()
            } else {
                v.also_requires
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(" + ")
            };
            vec![
                v.class.name().to_string(),
                v.impact.split_whitespace().collect::<Vec<_>>().join(" "),
                also,
                if v.closed_by_mac { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["key", "impact if exposed", "also requires", "closed by MAC"],
            &rows
        )
    );

    // ---- live demonstration of the P_Key row ----
    let p1 = PKey(0x8001);
    let mut fabric = SecureFabric::new(3, AuthAlgorithm::Umac32, KeyScope::Partition, 2025);
    fabric.create_partition(p1, &[0, 1]);

    // Stock IBA: node 2 captured P_Key 0x8001 off the wire. A plaintext
    // packet with the right key is accepted by a member whose policy does
    // not demand authentication (legacy behaviour) — if it got past the
    // P_Key table, which for a *member* it would. We demonstrate with a
    // packet injected "as" an outsider claiming the key.
    let forged = fabric
        .send_unauthenticated(2, 1, p1, QKey(1), b"stolen-P_Key injection")
        .unwrap();
    match fabric.deliver(1, &forged) {
        Ok(_) => {
            println!("stock IBA: forged packet with captured P_Key ACCEPTED (the vulnerability)")
        }
        Err(e) => println!("stock IBA: delivery refused ({e:?})"),
    }

    // Enable on-demand authentication for the partition: same forgery dies.
    fabric.require_auth_for_partition(p1);
    let forged = fabric
        .send_unauthenticated(2, 1, p1, QKey(1), b"stolen-P_Key injection")
        .unwrap();
    let verdict = fabric.deliver(1, &forged);
    assert_eq!(verdict, Err(FabricError::PolicyViolation));
    println!("with ICRC-as-MAC enabled: same forgery rejected ({verdict:?})");

    // And a member with the secret still communicates.
    let legit = fabric
        .send_datagram(0, 1, p1, QKey(1), b"legit traffic")
        .unwrap();
    assert!(fabric.deliver(1, &legit).is_ok());
    println!("member with the partition secret still delivers: OK");
    println!();
    println!("Every Table 3 row is exercised as a test in ib-mgmt::keys and");
    println!("examples/key_attacks.rs demonstrates the Q_Key and R_Key rows.");
}
