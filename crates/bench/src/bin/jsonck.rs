//! CI gate: every `BENCH_*.json` the experiment binaries emit must parse
//! back through `ib_runtime::Json` and carry the standard document shape
//! (experiment / seed / config / points). Exits non-zero on the first
//! file that doesn't.
//!
//! Usage: `jsonck BENCH_fig1.json [BENCH_fig_replay.json ...]`

use ib_runtime::Json;

fn check(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parse failed: {e:?}"))?;
    let experiment = doc
        .get("experiment")
        .and_then(Json::as_str)
        .ok_or("missing string field `experiment`")?;
    doc.get("seed")
        .and_then(Json::as_u64)
        .ok_or("missing u64 field `seed`")?;
    doc.get("config").ok_or("missing field `config`")?;
    let points = doc
        .get("points")
        .and_then(Json::as_arr)
        .ok_or("missing array field `points`")?;
    if points.is_empty() {
        return Err(format!("{experiment}: `points` is empty"));
    }
    // The writer and parser must agree exactly: re-serializing the parsed
    // document reproduces the file (modulo the trailing newline).
    if doc.to_string() != text.trim_end() {
        return Err("round-trip mismatch: parse(text).to_string() != text".into());
    }
    Ok(points.len())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: jsonck <BENCH_*.json> ...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &args {
        match check(path) {
            Ok(points) => println!("OK {path}: {points} points"),
            Err(e) => {
                eprintln!("FAIL {path}: {e}");
                failed = true;
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
