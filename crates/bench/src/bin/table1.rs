//! Table 1 — IBA simulation testbed parameters.
//!
//! Prints the configuration every simulated experiment in this repository
//! runs with, next to the paper's values, and asserts they agree.

use bench::render_table;
use ib_sim::config::SimConfig;

fn main() {
    let cfg = SimConfig::default();
    let rows = vec![
        vec![
            "Physical Link Bandwidth".to_string(),
            "2.5 Gbps".to_string(),
            format!("{} Gbps", cfg.link_gbps),
        ],
        vec![
            "Number of Physical Links (switch ports)".to_string(),
            "5".to_string(),
            cfg.ports_per_switch.to_string(),
        ],
        vec![
            "Number of VLs/Physical Link".to_string(),
            "16".to_string(),
            cfg.num_vls.to_string(),
        ],
        vec![
            "Realtime, Best-effort MTU".to_string(),
            "1024 Bytes".to_string(),
            format!("{} Bytes", cfg.mtu_bytes),
        ],
        vec![
            "Topology".to_string(),
            "16-node mesh".to_string(),
            format!("{0}x{0} mesh ({1} nodes)", cfg.mesh_dim, cfg.num_nodes()),
        ],
        vec![
            "Partitions".to_string(),
            "4 random groups".to_string(),
            cfg.num_partitions.to_string(),
        ],
    ];
    println!("Table 1. IBA simulation testbed parameters");
    println!(
        "{}",
        render_table(&["parameter", "paper", "this repo"], &rows)
    );

    assert_eq!(cfg.link_gbps, 2.5);
    assert_eq!(cfg.ports_per_switch, 5);
    assert_eq!(cfg.num_vls, 16);
    assert_eq!(cfg.mtu_bytes, 1024);
    assert_eq!(cfg.num_nodes(), 16);
    println!("OK: defaults match the paper's Table 1.");
}
