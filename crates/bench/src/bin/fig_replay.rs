//! Replay-defense experiment — goodput and delivery latency vs link loss
//! for {no-auth, auth, auth+replay-window}, over the reliable-connection
//! transport with fault injection and an active replay attacker.
//!
//! The point of the figure: reliability and the §7 replay defense are
//! *not* in tension. Every arm achieves 100% eventual delivery under
//! loss (the RC layer retransmits with the original PSN), but only the
//! replay-window arm admits zero attacker replays — the other two
//! deliver the attacker's byte-identical duplicates to the application.
//!
//! Usage: `fig_replay [--smoke] [--messages N] [--seed S]`

use bench::{arg_value, bench_doc, render_table, seed_arg, write_bench_json};
use ib_runtime::{Json, ToJson};
use ib_security::ChannelSecurity;
use ib_sim::FaultConfig;
use ib_transport::{run_replay_sim, ReplayReport, ReplaySimConfig};

/// Link loss probabilities swept on the x-axis (0–5%).
const LOSSES: [f64; 5] = [0.0, 0.005, 0.01, 0.02, 0.05];

fn config_for(seed: u64, messages: usize, loss: f64, security: ChannelSecurity) -> ReplaySimConfig {
    ReplaySimConfig {
        seed,
        security,
        messages,
        fault: FaultConfig::lossy(loss, 50_000),
        ..ReplaySimConfig::default()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--quick");
    let messages: usize = arg_value(&args, "--messages")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 60 } else { 300 });
    let seed = seed_arg(&args);

    let mut points: Vec<(f64, ChannelSecurity, ReplayReport)> = Vec::new();
    for &loss in &LOSSES {
        for &arm in &ChannelSecurity::ALL {
            let cfg = config_for(seed.0, messages, loss, arm);
            points.push((loss, arm, run_replay_sim(&cfg)));
        }
    }

    println!(
        "Replay defense under loss: goodput / latency / attacker outcome \
         (seed {seed}, {messages} messages/point)"
    );
    let table: Vec<Vec<String>> = points
        .iter()
        .map(|(loss, arm, r)| {
            vec![
                format!("{:.1}%", loss * 100.0),
                arm.label().to_string(),
                format!("{}/{}", r.delivered, r.expected),
                format!("{:.3}", r.goodput_gbps),
                format!("{:.2}", r.latency_us.mean()),
                r.retransmits.to_string(),
                r.replays_injected.to_string(),
                r.replays_admitted.to_string(),
                r.duplicates_delivered.to_string(),
                r.dup_suppressed.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "loss",
                "arm",
                "delivered",
                "goodput (Gb/s)",
                "latency (us)",
                "retrans",
                "replays inj",
                "replays admitted",
                "dups delivered",
                "dups suppressed"
            ],
            &table
        )
    );

    // ---- acceptance assertions ----
    for (loss, arm, r) in &points {
        assert!(
            r.delivered == r.expected && !r.failed && !r.timed_out,
            "{}% / {}: 100% eventual delivery required, got {}/{}",
            loss * 100.0,
            arm.label(),
            r.delivered,
            r.expected
        );
        if *arm == ChannelSecurity::AuthReplay {
            assert_eq!(
                r.replays_admitted,
                0,
                "{}%: replay window must admit zero attacker replays",
                loss * 100.0
            );
            assert_eq!(
                r.duplicates_delivered,
                0,
                "{}%: no duplicate ever reaches the application",
                loss * 100.0
            );
        } else if *loss > 0.0 || r.replays_injected > 0 {
            assert!(
                r.replays_admitted > 0,
                "{}% / {}: without the window the attack must succeed",
                loss * 100.0,
                arm.label()
            );
        }
    }
    // Loss forces retransmission; retransmits reuse their original PSN and
    // still get through the window (the issue's headline scenario, at 2%).
    let headline = points
        .iter()
        .find(|(l, a, _)| *l == 0.02 && *a == ChannelSecurity::AuthReplay)
        .expect("2% auth+replay point exists");
    assert!(headline.2.retransmits > 0, "2% loss must force retransmits");

    // Determinism: the same seed reproduces the headline point bit-for-bit.
    let again = run_replay_sim(&config_for(
        seed.0,
        messages,
        0.02,
        ChannelSecurity::AuthReplay,
    ));
    assert_eq!(
        headline.2.to_json().to_string(),
        again.to_json().to_string(),
        "identical output across two same-seed runs"
    );
    println!("OK: 100% delivery on every arm; zero admitted replays with the window.");

    let doc = bench_doc(
        "fig_replay",
        seed,
        Json::obj([
            ("losses", Json::arr(LOSSES.iter().map(|l| l.to_json()))),
            ("messages", (messages as u64).to_json()),
            (
                "base",
                config_for(seed.0, messages, 0.0, ChannelSecurity::AuthReplay).to_json(),
            ),
            ("smoke", smoke.to_json()),
        ]),
        points
            .iter()
            .map(|(loss, arm, r)| {
                Json::obj([
                    ("loss", loss.to_json()),
                    ("security", arm.label().to_json()),
                    ("report", r.to_json()),
                ])
            })
            .collect(),
    );
    let path = write_bench_json("fig_replay", &doc).expect("write BENCH_fig_replay.json");
    println!("wrote {}", path.display());
}
