//! Replay-defense experiment — goodput and delivery latency vs link loss
//! for {no-auth, auth, auth+replay-window}, over the reliable-connection
//! transport with fault injection and an active replay attacker.
//!
//! The point of the figure: reliability and the §7 replay defense are
//! *not* in tension. Every arm achieves 100% eventual delivery under
//! loss (the RC layer retransmits with the original PSN), but only the
//! replay-window arm admits zero attacker replays — the other two
//! deliver the attacker's byte-identical duplicates to the application.
//!
//! Two transports run the same sweep:
//!
//! * **p2p** — the original point-to-point harness
//!   ([`ib_transport::sim`]), kept as the determinism oracle: its
//!   per-point reports are byte-diffed against a pre-refactor golden
//!   capture (`tests/golden/fig_replay_oracle_pre_refactor.json`) when
//!   the seed and message count match, proving the transport/fabric
//!   refactor did not perturb the oracle path.
//! * **mesh** — the same endpoints attached to HCAs of the 16-node
//!   [`ib_sim`] fabric ([`ib_transport::fabric`]), where replays ride
//!   real VL arbitration and per-link faults.
//!
//! Usage: `fig_replay [--smoke] [--messages N] [--seed S]`

use bench::{arg_value, bench_doc, render_table, seed_arg, write_bench_json};
use ib_runtime::{Json, ToJson};
use ib_security::ChannelSecurity;
use ib_sim::time::MS;
use ib_sim::FaultConfig;
use ib_transport::{
    run_fabric_sim, run_replay_sim, FabricReport, FabricSimConfig, RdmaOp, ReplayReport,
    ReplaySimConfig,
};

/// Link loss probabilities swept on the x-axis (0–5%).
const LOSSES: [f64; 5] = [0.0, 0.005, 0.01, 0.02, 0.05];

/// Pre-refactor capture of the point-to-point arm (same seed, smoke
/// message count). Resolved relative to the crate so the check works
/// from any working directory.
const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/fig_replay_oracle_pre_refactor.json"
);

fn config_for(seed: u64, messages: usize, loss: f64, security: ChannelSecurity) -> ReplaySimConfig {
    ReplaySimConfig {
        seed,
        security,
        messages,
        fault: FaultConfig::lossy(loss, 50_000),
        ..ReplaySimConfig::default()
    }
}

fn mesh_config_for(
    seed: u64,
    messages: usize,
    loss: f64,
    security: ChannelSecurity,
) -> FabricSimConfig {
    let mut cfg = FabricSimConfig {
        seed,
        security,
        op: RdmaOp::Send,
        messages,
        payload_len: 256,
        ..FabricSimConfig::default()
    };
    cfg.sim.duration = 5 * MS;
    cfg.sim.fault = FaultConfig::lossy(loss, 50_000);
    cfg
}

/// Byte-diff the freshly-run p2p reports against the pre-refactor golden
/// capture. Only the per-point `report` objects are compared: the config
/// schema legitimately grew (`rc` gained MTU/retransmit knobs) but the
/// oracle's *behavior* must be bit-identical at the golden's seed.
fn check_golden(seed: u64, messages: usize, points: &[(f64, ChannelSecurity, ReplayReport)]) {
    let Ok(text) = std::fs::read_to_string(GOLDEN_PATH) else {
        println!("golden oracle check: capture not found, skipped");
        return;
    };
    let golden = Json::parse(&text).expect("golden capture parses");
    let g_seed = golden.get("seed").and_then(Json::as_u64);
    let g_messages = golden
        .get("config")
        .and_then(|c| c.get("messages"))
        .and_then(Json::as_u64);
    if g_seed != Some(seed) || g_messages != Some(messages as u64) {
        println!(
            "golden oracle check: skipped (captured at seed {:?}, {:?} messages)",
            g_seed, g_messages
        );
        return;
    }
    let g_points = golden.get("points").and_then(Json::as_arr).expect("points");
    assert_eq!(g_points.len(), points.len(), "golden point count");
    for (g, (loss, arm, r)) in g_points.iter().zip(points) {
        let want = g.get("report").expect("golden report").to_string();
        let got = r.to_json().to_string();
        assert_eq!(
            want,
            got,
            "p2p oracle diverged from pre-refactor capture at {}% / {}",
            loss * 100.0,
            arm.label()
        );
    }
    println!(
        "golden oracle check: {} p2p reports byte-identical to the pre-refactor capture",
        g_points.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--quick");
    let messages: usize = arg_value(&args, "--messages")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 60 } else { 300 });
    let seed = seed_arg(&args);

    let mut points: Vec<(f64, ChannelSecurity, ReplayReport)> = Vec::new();
    let mut mesh_points: Vec<(f64, ChannelSecurity, FabricReport)> = Vec::new();
    for &loss in &LOSSES {
        for &arm in &ChannelSecurity::ALL {
            let cfg = config_for(seed.0, messages, loss, arm);
            points.push((loss, arm, run_replay_sim(&cfg)));
            let mesh = mesh_config_for(seed.0, messages, loss, arm);
            mesh_points.push((loss, arm, run_fabric_sim(&mesh)));
        }
    }

    println!(
        "Replay defense under loss: goodput / latency / attacker outcome \
         (seed {seed}, {messages} messages/point)"
    );
    let header = [
        "transport",
        "loss",
        "arm",
        "delivered",
        "goodput (Gb/s)",
        "latency (us)",
        "retrans",
        "replays inj",
        "replays admitted",
        "dups delivered",
        "dups suppressed",
    ];
    let mut table: Vec<Vec<String>> = points
        .iter()
        .map(|(loss, arm, r)| {
            vec![
                "p2p".to_string(),
                format!("{:.1}%", loss * 100.0),
                arm.label().to_string(),
                format!("{}/{}", r.delivered, r.expected),
                format!("{:.3}", r.goodput_gbps),
                format!("{:.2}", r.latency_us.mean()),
                r.retransmits.to_string(),
                r.replays_injected.to_string(),
                r.replays_admitted.to_string(),
                r.duplicates_delivered.to_string(),
                r.dup_suppressed.to_string(),
            ]
        })
        .collect();
    table.extend(mesh_points.iter().map(|(loss, arm, r)| {
        vec![
            "mesh".to_string(),
            format!("{:.1}%", loss * 100.0),
            arm.label().to_string(),
            format!("{}/{}", r.delivered, r.expected),
            format!("{:.3}", r.goodput_gbps),
            format!("{:.2}", r.latency_us.mean()),
            r.retransmits.to_string(),
            r.replays_injected.to_string(),
            r.replays_admitted.to_string(),
            r.duplicates_delivered.to_string(),
            r.dup_suppressed.to_string(),
        ]
    }));
    println!("{}", render_table(&header, &table));

    // ---- acceptance assertions (both transports) ----
    for (loss, arm, r) in &points {
        assert!(
            r.delivered == r.expected && !r.failed && !r.timed_out,
            "p2p {}% / {}: 100% eventual delivery required, got {}/{}",
            loss * 100.0,
            arm.label(),
            r.delivered,
            r.expected
        );
        if *arm == ChannelSecurity::AuthReplay {
            assert_eq!(
                r.replays_admitted,
                0,
                "p2p {}%: replay window must admit zero attacker replays",
                loss * 100.0
            );
            assert_eq!(
                r.duplicates_delivered,
                0,
                "p2p {}%: no duplicate ever reaches the application",
                loss * 100.0
            );
        } else if *loss > 0.0 || r.replays_injected > 0 {
            assert!(
                r.replays_admitted > 0,
                "p2p {}% / {}: without the window the attack must succeed",
                loss * 100.0,
                arm.label()
            );
        }
    }
    for (loss, arm, r) in &mesh_points {
        assert!(
            r.delivered == r.expected && !r.failed && !r.timed_out,
            "mesh {}% / {}: 100% eventual delivery required, got {}/{}",
            loss * 100.0,
            arm.label(),
            r.delivered,
            r.expected
        );
        if *arm == ChannelSecurity::AuthReplay {
            assert_eq!(
                r.replays_admitted,
                0,
                "mesh {}%: replay window must admit zero attacker replays",
                loss * 100.0
            );
            assert_eq!(
                r.duplicates_delivered,
                0,
                "mesh {}%: no duplicate ever reaches the application",
                loss * 100.0
            );
        } else if r.replays_injected > 0 {
            assert!(
                r.replays_admitted > 0,
                "mesh {}% / {}: without the window the attack must succeed",
                loss * 100.0,
                arm.label()
            );
        }
    }
    // Loss forces retransmission; retransmits reuse their original PSN and
    // still get through the window (the issue's headline scenario, at 2%).
    let headline = points
        .iter()
        .find(|(l, a, _)| *l == 0.02 && *a == ChannelSecurity::AuthReplay)
        .expect("2% auth+replay point exists");
    assert!(headline.2.retransmits > 0, "2% loss must force retransmits");

    // Determinism: the same seed reproduces the headline point bit-for-bit.
    let again = run_replay_sim(&config_for(
        seed.0,
        messages,
        0.02,
        ChannelSecurity::AuthReplay,
    ));
    assert_eq!(
        headline.2.to_json().to_string(),
        again.to_json().to_string(),
        "identical output across two same-seed runs"
    );

    // The refactor proof: the oracle path still produces the pre-refactor
    // bytes at the golden's seed.
    check_golden(seed.0, messages, &points);
    println!("OK: 100% delivery on every arm; zero admitted replays with the window.");

    let doc = bench_doc(
        "fig_replay",
        seed,
        Json::obj([
            ("losses", Json::arr(LOSSES.iter().map(|l| l.to_json()))),
            ("messages", (messages as u64).to_json()),
            (
                "base",
                config_for(seed.0, messages, 0.0, ChannelSecurity::AuthReplay).to_json(),
            ),
            (
                "mesh_base",
                mesh_config_for(seed.0, messages, 0.0, ChannelSecurity::AuthReplay).to_json(),
            ),
            ("smoke", smoke.to_json()),
        ]),
        points
            .iter()
            .map(|(loss, arm, r)| {
                Json::obj([
                    ("transport", "p2p".to_json()),
                    ("loss", loss.to_json()),
                    ("security", arm.label().to_json()),
                    ("report", r.to_json()),
                ])
            })
            .chain(mesh_points.iter().map(|(loss, arm, r)| {
                Json::obj([
                    ("transport", "mesh".to_json()),
                    ("loss", loss.to_json()),
                    ("security", arm.label().to_json()),
                    ("report", r.to_json()),
                ])
            }))
            .collect(),
    );
    let path = write_bench_json("fig_replay", &doc).expect("write BENCH_fig_replay.json");
    println!("wrote {}", path.display());
}
