//! Table 4 as *throughput over real packets* — MB/s and cycles/byte for
//! every authentication candidate over {64 B, 1 KiB, 4 KiB} payloads,
//! comparing three tag-computation paths:
//!
//! * `baseline` — the pre-scratch-buffer hot path: materialize the ICRC
//!   message with an allocating [`Packet::icrc_message`], then one-shot
//!   MAC. Kept as the regression reference.
//! * `oneshot`  — serialize with [`Packet::icrc_message_into`] into a
//!   reused scratch buffer, then one-shot MAC (no per-packet allocation).
//! * `stream`   — no materialization at all: walk the packet's masked
//!   header slices with [`Packet::for_each_icrc_slice`] straight through
//!   the incremental [`MacStream`] kernels.
//!
//! Every path must produce the identical tag (asserted per algorithm and
//! size before anything is timed), and the streaming path must not lose
//! to the materializing ones — that is the §5.2 link-rate argument: the
//! MAC can run while the packet streams through the port, with no copy.
//!
//! A second section compares the scalar kernels against the runtime-
//! dispatched SIMD paths (`IB_SIMD=off` forces both arms scalar): CRC-32
//! slicing-by-8 vs PCLMULQDQ folding, scalar vs vectorized UMAC, the
//! 4-packet multi-buffer UMAC, and the AES-GCM-style AEAD seal/open arm.
//! Every point carries `gbps`, `pkts_per_sec`, and the ratio against the
//! paper's 2.5 Gbps link rate.
//!
//! Usage: `mac_table4 [--smoke] [--seed S]`

use std::time::{Duration, Instant};

use bench::{estimate_cpu_hz, render_table, seed_arg};
use ib_crypto::crc::Crc32;
use ib_crypto::mac::{AnyMac, AuthAlgorithm, Mac};
use ib_crypto::umac::Umac;
use ib_crypto::AesGcm32;
use ib_packet::types::{Lid, PKey, Psn, Qpn};
use ib_packet::{OpCode, Packet, PacketBuilder};
use ib_runtime::bench::{BenchConfig, Harness, Measurement};
use ib_runtime::{Json, ToJson};

/// Payload sizes under test: minimum-ish, the UMAC NH chunk size, and a
/// multi-chunk jumbo frame.
const SIZES: [usize; 3] = [64, 1024, 4096];
/// Tag-computation paths, in baseline-first order.
const ARMS: [&str; 3] = ["baseline", "oneshot", "stream"];
/// Fixed nonce: arms must agree bit-for-bit, and throughput does not
/// depend on its value.
const NONCE: u64 = 0x0001_0000_002A;

/// A sealed RC data packet carrying `len` deterministic payload bytes.
fn packet_for(len: usize) -> Packet {
    let mut payload = vec![0u8; len];
    for (i, b) in payload.iter_mut().enumerate() {
        *b = (i as u8).wrapping_mul(31).wrapping_add(7);
    }
    PacketBuilder::new(OpCode::RC_SEND_ONLY)
        .slid(Lid(1))
        .dlid(Lid(2))
        .pkey(PKey(0x8001))
        .dest_qp(Qpn(7))
        .psn(Psn(42))
        .payload(payload)
        .build()
}

fn stream_tag(mac: &AnyMac, packet: &Packet) -> u32 {
    let mut st = mac.stream(NONCE);
    packet.for_each_icrc_slice(|slice| st.update(slice));
    st.finalize()
}

/// The paper's Discussion argues MAC viability against this link rate.
const LINK_RATE_GBPS: f64 = 2.5;

/// Interleave `arms` sample-by-sample under one shared batch size (see
/// the timed-runs comment in `main`: a clock-frequency dip then lands on
/// every arm of the adjacent sample tuple, not on whichever arm ran
/// last). Returns one raw sample vector per arm, ns per iteration.
fn measure_paired(config: &BenchConfig, arms: &mut [Box<dyn FnMut() + '_>]) -> Vec<Vec<f64>> {
    let sample_window = config.measurement / (config.samples * arms.len() as u32);
    let mut batch: u64 = 1;
    let warmup_end = Instant::now() + config.warmup;
    loop {
        let mut slowest = Duration::ZERO;
        for run in arms.iter_mut() {
            let start = Instant::now();
            for _ in 0..batch {
                run();
            }
            slowest = slowest.max(start.elapsed());
        }
        if slowest * 10 >= sample_window && Instant::now() >= warmup_end {
            break;
        }
        if slowest * 10 < sample_window {
            batch = batch.saturating_mul(2);
        }
    }
    let mut sample_ns = vec![Vec::new(); arms.len()];
    for _ in 0..config.samples {
        for (a, run) in arms.iter_mut().enumerate() {
            let start = Instant::now();
            for _ in 0..batch {
                run();
            }
            sample_ns[a].push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
    }
    sample_ns
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--quick");
    let seed = seed_arg(&args);
    let config = if smoke {
        BenchConfig {
            warmup: Duration::from_millis(20),
            measurement: Duration::from_millis(80),
            samples: 5,
        }
    } else {
        BenchConfig {
            warmup: Duration::from_millis(200),
            measurement: Duration::from_millis(300),
            samples: 15,
        }
    };

    let mut key = [0u8; 16];
    key.copy_from_slice(&[seed.0.to_le_bytes(), (!seed.0).to_le_bytes()].concat());
    let packets: Vec<Packet> = SIZES.iter().map(|&len| packet_for(len)).collect();
    // The timed message is the ICRC message (masked headers + padded
    // payload), not just the payload.
    let msg_lens: Vec<usize> = packets.iter().map(|p| p.icrc_message().len()).collect();

    // ---- equivalence gate: all three paths, identical tags ----
    for alg in AuthAlgorithm::ALL {
        let mac = AnyMac::new(alg, &key);
        for (packet, &msg_len) in packets.iter().zip(&msg_lens) {
            let baseline = mac.tag32(NONCE, &packet.icrc_message());
            let mut scratch = Vec::new();
            packet.icrc_message_into(&mut scratch);
            assert_eq!(scratch.len(), msg_len);
            let oneshot = mac.tag32(NONCE, &scratch);
            let streamed = stream_tag(&mac, packet);
            assert_eq!(
                (baseline, oneshot),
                (streamed, streamed),
                "{} / {msg_len} B: all tag paths must agree",
                alg.name()
            );
        }
    }
    println!("OK: baseline, oneshot and stream tags identical for every algorithm and size.\n");

    // ---- timed runs ----
    // This host's clock throttles by tens of percent over seconds, so the
    // three arms of each comparison are interleaved *sample by sample*: a
    // frequency dip lands on all arms of the adjacent sample triple, not
    // on whichever arm happened to run in that window. The raw samples
    // then flow through the harness's normal statistics pipeline
    // (Tukey fences, bootstrap CI) via `Group::record`.
    let mut harness = Harness::new(config);
    // (arm, alg, payload_len, msg_len) per measurement, in push order —
    // ids are display-only (algorithm names contain '/').
    let mut meta: Vec<(&str, AuthAlgorithm, usize, usize)> = Vec::new();
    // Packets processed per iteration, one entry per recorded point (the
    // multi-buffer cells below MAC four at a time).
    let mut pkts_per_iter: Vec<u64> = Vec::new();
    // Raw per-cell samples, kept for the paired acceptance statistics.
    let mut raw: Vec<(AuthAlgorithm, usize, [Vec<f64>; 3])> = Vec::new();
    for alg in AuthAlgorithm::ALL {
        let mac = AnyMac::new(alg, &key);
        for (i, &size) in SIZES.iter().enumerate() {
            let packet = &packets[i];
            let msg_len = msg_lens[i];
            let mut scratch = Vec::with_capacity(msg_len);
            let mut arms: Vec<Box<dyn FnMut() + '_>> = vec![
                Box::new(|| {
                    std::hint::black_box(mac.tag32(NONCE, &packet.icrc_message()));
                }),
                Box::new(|| {
                    packet.icrc_message_into(&mut scratch);
                    std::hint::black_box(mac.tag32(NONCE, &scratch));
                }),
                Box::new(|| {
                    std::hint::black_box(stream_tag(&mac, packet));
                }),
            ];
            let sample_ns = measure_paired(&config, &mut arms);
            drop(arms);
            let id = format!("{}-{size}B", alg.name());
            for (a, &arm) in ARMS.iter().enumerate() {
                harness
                    .group(arm)
                    .throughput_bytes(msg_len as u64)
                    .record(&id, &sample_ns[a]);
                meta.push((arm, alg, size, msg_len));
                pkts_per_iter.push(1);
            }
            raw.push((alg, size, sample_ns.try_into().expect("three arms")));
        }
    }

    // ---- SIMD dispatch section: scalar kernels vs the dispatched ones ----
    // With `IB_SIMD=off` both arms run the identical scalar code, so the
    // printed structure (and every tag) is unchanged — only the numbers
    // move. CI byte-diffs the number-normalized output both ways.
    let msgs: Vec<Vec<u8>> = packets.iter().map(|p| p.icrc_message()).collect();
    let umac = Umac::new(&key);
    let gcm = AesGcm32::new(&key);
    for msg in &msgs {
        let mut a = Crc32::new();
        a.update_slice8(msg);
        let mut b = Crc32::new();
        b.update_auto(msg);
        assert_eq!(a.finalize(), b.finalize(), "crc32 dispatch changed the sum");
        assert_eq!(
            umac.tag32_scalar(NONCE, msg),
            umac.tag32(NONCE, msg),
            "umac dispatch changed the tag"
        );
        let quad = [&msg[..]; 4];
        let x4 = umac.tag32_x4([NONCE, NONCE ^ 1, NONCE ^ 2, NONCE ^ 3], quad);
        for (j, t) in x4.iter().enumerate() {
            assert_eq!(*t, umac.tag32(NONCE ^ j as u64, msg), "x4 lane {j}");
        }
        let mut sealed = msg.clone();
        let tag = gcm.seal(NONCE, b"", &mut sealed);
        assert!(gcm.open(NONCE, b"", &mut sealed, tag), "AEAD round-trip");
        assert_eq!(sealed, *msg);
    }
    println!("OK: dispatched kernels byte-identical to scalar; AEAD round-trips.\n");

    // Raw samples per (group, size) for the speedup gates.
    let mut simd_raw: Vec<(&str, usize, Vec<Vec<f64>>)> = Vec::new();
    for (i, &size) in SIZES.iter().enumerate() {
        let msg = &msgs[i];
        let msg_len = msg_lens[i];
        {
            let mut arms: Vec<Box<dyn FnMut() + '_>> = vec![
                Box::new(|| {
                    let mut c = Crc32::new();
                    c.update_slice8(msg);
                    std::hint::black_box(c.finalize());
                }),
                Box::new(|| {
                    let mut c = Crc32::new();
                    c.update_auto(msg);
                    std::hint::black_box(c.finalize());
                }),
            ];
            let samples = measure_paired(&config, &mut arms);
            drop(arms);
            for (a, arm) in ["scalar", "simd"].iter().enumerate() {
                harness
                    .group("crc32")
                    .throughput_bytes(msg_len as u64)
                    .record(&format!("{arm}-{size}B"), &samples[a]);
                pkts_per_iter.push(1);
            }
            simd_raw.push(("crc32", size, samples));
        }
        {
            let nonces = [NONCE, NONCE ^ 1, NONCE ^ 2, NONCE ^ 3];
            let quad = [&msg[..]; 4];
            let mut arms: Vec<Box<dyn FnMut() + '_>> = vec![
                Box::new(|| {
                    std::hint::black_box(umac.tag32_scalar(NONCE, msg));
                }),
                Box::new(|| {
                    std::hint::black_box(umac.tag32(NONCE, msg));
                }),
                Box::new(|| {
                    std::hint::black_box(umac.tag32_x4(nonces, quad));
                }),
            ];
            let samples = measure_paired(&config, &mut arms);
            drop(arms);
            for (a, arm) in ["scalar", "simd", "x4"].iter().enumerate() {
                let id = format!("{arm}-{size}B");
                let mut group = harness.group("umac");
                if *arm == "x4" {
                    // Four messages per iteration: carry the true total so
                    // bytes/s stays comparable with the single cells.
                    group.record_with_bytes(&id, &samples[a], 4 * msg_len as u64);
                    pkts_per_iter.push(4);
                } else {
                    group
                        .throughput_bytes(msg_len as u64)
                        .record(&id, &samples[a]);
                    pkts_per_iter.push(1);
                }
            }
            simd_raw.push(("umac", size, samples));
        }
        {
            let mut sealed = msg.clone();
            let tag = gcm.seal(NONCE, b"", &mut sealed);
            let mut seal_buf = vec![0u8; msg_len];
            let mut open_buf = vec![0u8; msg_len];
            let mut arms: Vec<Box<dyn FnMut() + '_>> = vec![
                Box::new(|| {
                    seal_buf.copy_from_slice(msg);
                    std::hint::black_box(gcm.seal(NONCE, b"", &mut seal_buf));
                }),
                Box::new(|| {
                    open_buf.copy_from_slice(&sealed);
                    std::hint::black_box(gcm.open(NONCE, b"", &mut open_buf, tag));
                }),
            ];
            let samples = measure_paired(&config, &mut arms);
            drop(arms);
            for (a, arm) in ["seal", "open"].iter().enumerate() {
                harness
                    .group("aead")
                    .throughput_bytes(msg_len as u64)
                    .record(&format!("{arm}-{size}B"), &samples[a]);
                pkts_per_iter.push(1);
            }
            simd_raw.push(("aead", size, samples));
        }
    }

    let cpu_hz = estimate_cpu_hz();
    let results = harness.results().to_vec();
    assert_eq!(results.len(), pkts_per_iter.len());
    assert!(results.len() > meta.len());
    let cell = |arm: &str, alg: AuthAlgorithm, size: usize| -> &Measurement {
        let idx = meta
            .iter()
            .position(|&(a, g, s, _)| a == arm && g == alg && s == size)
            .expect("every (arm, alg, size) was measured");
        &results[idx]
    };
    // The robust statistic for pass/fail comparisons: the *median paired
    // ratio*. Arms run back-to-back within each sample triple, so a clock
    // dip hits the ratio's numerator and denominator almost equally and
    // cancels — unlike cross-arm floors or means, which drift apart when
    // the throttle window moves mid-cell.
    let paired = |num: &str, den: &str, alg: AuthAlgorithm, size: usize| -> Vec<f64> {
        let ni = ARMS.iter().position(|&a| a == num).unwrap();
        let di = ARMS.iter().position(|&a| a == den).unwrap();
        let samples = &raw
            .iter()
            .find(|&&(g, s, _)| g == alg && s == size)
            .expect("every (alg, size) was measured")
            .2;
        let mut ratios: Vec<f64> = samples[ni]
            .iter()
            .zip(&samples[di])
            .map(|(n, d)| n / d)
            .collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ratios
    };
    let median = |ratios: &[f64]| ratios[ratios.len() / 2];

    // ---- Table 4, throughput form ----
    println!(
        "\nTable 4 as throughput (estimated clock {:.2} GHz; MB/s over the ICRC message):",
        cpu_hz / 1e9
    );
    let mut trows: Vec<Vec<String>> = Vec::new();
    for alg in AuthAlgorithm::ALL {
        for (i, &size) in SIZES.iter().enumerate() {
            let msg_len = msg_lens[i];
            for &arm in &ARMS {
                let m = cell(arm, alg, size);
                let mbps = m.bytes_per_sec().unwrap_or(0.0) / 1e6;
                let cpb = m.mean_ns * 1e-9 * cpu_hz / msg_len as f64;
                trows.push(vec![
                    arm.to_string(),
                    alg.name().to_string(),
                    size.to_string(),
                    format!("{mbps:.1}"),
                    format!("{cpb:.2}"),
                ]);
            }
        }
    }
    println!(
        "{}",
        render_table(
            &["path", "algorithm", "payload B", "MB/s", "cycles/byte"],
            &trows
        )
    );

    // ---- SIMD dispatch table (line-rate form) ----
    println!(
        "\nSIMD dispatch vs scalar (Gbps over the ICRC message; link rate {LINK_RATE_GBPS} Gbps):"
    );
    let mut srows: Vec<Vec<String>> = Vec::new();
    for (m, &ppi) in results[meta.len()..]
        .iter()
        .zip(&pkts_per_iter[meta.len()..])
    {
        let gbps = m.bytes_per_sec().unwrap_or(0.0) * 8.0 / 1e9;
        srows.push(vec![
            m.id.clone(),
            format!("{gbps:.2}"),
            format!("{:.0}", ppi as f64 * 1e9 / m.mean_ns),
            format!("{:.2}", gbps / LINK_RATE_GBPS),
        ]);
    }
    println!(
        "{}",
        render_table(&["kernel", "Gbps", "pkts/s", "x link rate"], &srows)
    );

    // ---- acceptance assertions (on median paired ratios) ----
    // Streaming UMAC keeps pace with the one-shot kernel at the NH chunk
    // size (1 KiB): the incremental state machine costs nothing material.
    // Smoke runs (5 samples over ~2 ms windows) gate structure and tag
    // equivalence in CI, not 5 %-level perf claims — widen every bar.
    let (med_bar, best_bar, beat_bar, broad_bar) = if smoke {
        (1.25, 1.10, 1.10, 1.25)
    } else {
        (1.05, 1.00, 1.00, 1.10)
    };
    // Even the paired median moves ±7 % run-to-run on this host, so the
    // gate is a disjunction: a genuine ≥5 % incremental-state overhead
    // would both push the median past the bar *and* keep streaming from
    // ever winning a paired triple.
    let ratios = paired("stream", "oneshot", AuthAlgorithm::Umac32, 1024);
    let (med, best) = (median(&ratios), ratios[0]);
    assert!(
        med <= med_bar || best <= best_bar,
        "streaming UMAC at 1 KiB must keep pace with one-shot \
         (median paired ratio {med:.3}, best {best:.3})"
    );
    // The new path beats the allocating pre-PR baseline for the paper's
    // recommended MAC wherever the allocation+copy is material…
    for &size in &[1024, 4096] {
        let r = median(&paired("stream", "baseline", AuthAlgorithm::Umac32, size));
        assert!(
            r < beat_bar,
            "streaming UMAC at {size} B must beat the allocating baseline \
             (median paired ratio {r:.3})"
        );
    }
    // …and never loses meaningfully to it for any algorithm or size.
    // This broad guard uses the *minimum* paired ratio: a genuine kernel
    // regression slows every sample triple, while this host's clock
    // noise (±15 % even on paired 20 µs AES samples) does not — at least
    // one triple must still show streaming at near-parity. The
    // per-packet allocation story at small sizes is told by the
    // allocation-counting tests, not by nanoseconds. At the smallest
    // size the one-shot arms hand the vector kernels the whole message
    // contiguously while streaming absorbs it as header fragments, so
    // the fixed incremental-state cost is measured against a ~30 ns tag:
    // the bar there bounds that constant (the batched x4/admit_many
    // path, not streaming, is the small-packet line-rate story).
    for alg in AuthAlgorithm::ALL {
        for &size in &SIZES {
            let bar = if size <= 64 {
                broad_bar + 0.40
            } else {
                broad_bar
            };
            let r = paired("stream", "baseline", alg, size)[0];
            assert!(
                r <= bar,
                "{} at {size} B: streaming within {:.0}% of baseline in \
                 the best paired sample (min paired ratio {r:.3})",
                alg.name(),
                (bar - 1.0) * 100.0
            );
        }
    }
    println!("OK: streaming path holds up against one-shot and beats the allocating baseline.");

    // ---- SIMD speedup gates (median paired scalar/simd time ratio) ----
    // With the CPU features present the dispatched kernels must actually
    // pay off; without them (including `IB_SIMD=off`) both arms run the
    // same code and the gate is a ≥0.95× non-regression floor on the
    // dispatch overhead itself.
    let caps = ib_crypto::simd::caps();
    // Median paired per-packet time ratio of the scalar arm against one
    // dispatched lane; `pkts` scales lanes that tag several packets per
    // iteration (the x4 arm).
    let speedup_lane = |group: &str, size: usize, lane: usize, pkts: f64| -> f64 {
        let samples = &simd_raw
            .iter()
            .find(|&&(g, s, _)| g == group && s == size)
            .expect("every simd cell was measured")
            .2;
        let mut r: Vec<f64> = samples[0]
            .iter()
            .zip(&samples[lane])
            .map(|(scalar, disp)| scalar / (disp / pkts))
            .collect();
        r.sort_by(|a, b| a.partial_cmp(b).unwrap());
        r[r.len() / 2]
    };
    let crc_bar = if caps.pclmul { 2.0 } else { 0.95 };
    let umac_bar = if caps.avx2 || caps.sse2 { 1.5 } else { 0.95 };
    let crc_speedup = speedup_lane("crc32", 4096, 1, 1.0);
    assert!(
        crc_speedup >= crc_bar,
        "CRC-32 @ 4 KiB: dispatched kernel {crc_speedup:.2}x scalar, need >= {crc_bar}x"
    );
    // The scalar NH loop auto-vectorizes well, so the single-buffer
    // margin is modest; the deployed small/mid-packet datapath is the
    // 4-packet lockstep lane (`tag32_x4`, what `admit_many` batches
    // into), which also pipelines the four nonce pads through AES. The
    // gate takes the best dispatched lane per packet.
    let umac_speedup = speedup_lane("umac", 1024, 1, 1.0).max(speedup_lane("umac", 1024, 2, 4.0));
    assert!(
        umac_speedup >= umac_bar,
        "UMAC @ 1 KiB: best dispatched lane {umac_speedup:.2}x scalar per packet, need >= {umac_bar}x"
    );
    println!("OK: dispatched kernels meet their throughput floors.");

    // ---- BENCH_mac_throughput.json: every point gains the line-rate
    // headline fields (gbps, pkts_per_sec, vs_link_rate_2_5gbps) ----
    let mut doc = harness.to_json(
        "mac_throughput",
        seed,
        Json::obj([
            (
                "payload_sizes",
                Json::arr(SIZES.iter().map(|&s| (s as u64).to_json())),
            ),
            (
                "message_lens",
                Json::arr(msg_lens.iter().map(|&l| (l as u64).to_json())),
            ),
            ("arms", Json::arr(ARMS.iter().map(|a| a.to_json()))),
            (
                "simd_groups",
                Json::arr(["crc32", "umac", "aead"].iter().map(|g| g.to_json())),
            ),
            ("lanes", Json::arr([1u64, 4].iter().map(|&l| l.to_json()))),
            ("link_rate_gbps", LINK_RATE_GBPS.to_json()),
            ("simd_active", (caps.any() as u64).to_json()),
            ("cpu_hz", cpu_hz.to_json()),
            ("smoke", smoke.to_json()),
        ]),
    );
    if let Json::Obj(pairs) = &mut doc {
        let points = pairs
            .iter_mut()
            .find(|(k, _)| k == "points")
            .map(|(_, v)| v)
            .expect("document has points");
        if let Json::Arr(points) = points {
            assert_eq!(points.len(), results.len());
            for ((point, m), &ppi) in points.iter_mut().zip(&results).zip(&pkts_per_iter) {
                let gbps = m.bytes_per_sec().unwrap_or(0.0) * 8.0 / 1e9;
                if let Json::Obj(fields) = point {
                    fields.push(("gbps".to_string(), gbps.to_json()));
                    fields.push((
                        "pkts_per_sec".to_string(),
                        (ppi as f64 * 1e9 / m.mean_ns).to_json(),
                    ));
                    fields.push((
                        "vs_link_rate_2_5gbps".to_string(),
                        (gbps / LINK_RATE_GBPS).to_json(),
                    ));
                }
            }
        }
    }
    let path = std::path::PathBuf::from("BENCH_mac_throughput.json");
    std::fs::write(&path, format!("{doc}\n")).expect("write BENCH_mac_throughput.json");
    println!("wrote {}", path.display());
}
