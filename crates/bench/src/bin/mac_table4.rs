//! Table 4 as *throughput over real packets* — MB/s and cycles/byte for
//! every authentication candidate over {64 B, 1 KiB, 4 KiB} payloads,
//! comparing three tag-computation paths:
//!
//! * `baseline` — the pre-scratch-buffer hot path: materialize the ICRC
//!   message with an allocating [`Packet::icrc_message`], then one-shot
//!   MAC. Kept as the regression reference.
//! * `oneshot`  — serialize with [`Packet::icrc_message_into`] into a
//!   reused scratch buffer, then one-shot MAC (no per-packet allocation).
//! * `stream`   — no materialization at all: walk the packet's masked
//!   header slices with [`Packet::for_each_icrc_slice`] straight through
//!   the incremental [`MacStream`] kernels.
//!
//! Every path must produce the identical tag (asserted per algorithm and
//! size before anything is timed), and the streaming path must not lose
//! to the materializing ones — that is the §5.2 link-rate argument: the
//! MAC can run while the packet streams through the port, with no copy.
//!
//! Usage: `mac_table4 [--smoke] [--seed S]`

use std::time::{Duration, Instant};

use bench::{estimate_cpu_hz, render_table, seed_arg};
use ib_crypto::mac::{AnyMac, AuthAlgorithm, Mac};
use ib_packet::types::{Lid, PKey, Psn, Qpn};
use ib_packet::{OpCode, Packet, PacketBuilder};
use ib_runtime::bench::{BenchConfig, Harness, Measurement};
use ib_runtime::{Json, ToJson};

/// Payload sizes under test: minimum-ish, the UMAC NH chunk size, and a
/// multi-chunk jumbo frame.
const SIZES: [usize; 3] = [64, 1024, 4096];
/// Tag-computation paths, in baseline-first order.
const ARMS: [&str; 3] = ["baseline", "oneshot", "stream"];
/// Fixed nonce: arms must agree bit-for-bit, and throughput does not
/// depend on its value.
const NONCE: u64 = 0x0001_0000_002A;

/// A sealed RC data packet carrying `len` deterministic payload bytes.
fn packet_for(len: usize) -> Packet {
    let mut payload = vec![0u8; len];
    for (i, b) in payload.iter_mut().enumerate() {
        *b = (i as u8).wrapping_mul(31).wrapping_add(7);
    }
    PacketBuilder::new(OpCode::RC_SEND_ONLY)
        .slid(Lid(1))
        .dlid(Lid(2))
        .pkey(PKey(0x8001))
        .dest_qp(Qpn(7))
        .psn(Psn(42))
        .payload(payload)
        .build()
}

fn stream_tag(mac: &AnyMac, packet: &Packet) -> u32 {
    let mut st = mac.stream(NONCE);
    packet.for_each_icrc_slice(|slice| st.update(slice));
    st.finalize()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--quick");
    let seed = seed_arg(&args);
    let config = if smoke {
        BenchConfig {
            warmup: Duration::from_millis(20),
            measurement: Duration::from_millis(80),
            samples: 5,
        }
    } else {
        BenchConfig {
            warmup: Duration::from_millis(200),
            measurement: Duration::from_millis(300),
            samples: 15,
        }
    };

    let mut key = [0u8; 16];
    key.copy_from_slice(&[seed.0.to_le_bytes(), (!seed.0).to_le_bytes()].concat());
    let packets: Vec<Packet> = SIZES.iter().map(|&len| packet_for(len)).collect();
    // The timed message is the ICRC message (masked headers + padded
    // payload), not just the payload.
    let msg_lens: Vec<usize> = packets.iter().map(|p| p.icrc_message().len()).collect();

    // ---- equivalence gate: all three paths, identical tags ----
    for alg in AuthAlgorithm::ALL {
        let mac = AnyMac::new(alg, &key);
        for (packet, &msg_len) in packets.iter().zip(&msg_lens) {
            let baseline = mac.tag32(NONCE, &packet.icrc_message());
            let mut scratch = Vec::new();
            packet.icrc_message_into(&mut scratch);
            assert_eq!(scratch.len(), msg_len);
            let oneshot = mac.tag32(NONCE, &scratch);
            let streamed = stream_tag(&mac, packet);
            assert_eq!(
                (baseline, oneshot),
                (streamed, streamed),
                "{} / {msg_len} B: all tag paths must agree",
                alg.name()
            );
        }
    }
    println!("OK: baseline, oneshot and stream tags identical for every algorithm and size.\n");

    // ---- timed runs ----
    // This host's clock throttles by tens of percent over seconds, so the
    // three arms of each comparison are interleaved *sample by sample*: a
    // frequency dip lands on all arms of the adjacent sample triple, not
    // on whichever arm happened to run in that window. The raw samples
    // then flow through the harness's normal statistics pipeline
    // (Tukey fences, bootstrap CI) via `Group::record`.
    let mut harness = Harness::new(config);
    // (arm, alg, payload_len, msg_len) per measurement, in push order —
    // ids are display-only (algorithm names contain '/').
    let mut meta: Vec<(&str, AuthAlgorithm, usize, usize)> = Vec::new();
    // Raw per-cell samples, kept for the paired acceptance statistics.
    let mut raw: Vec<(AuthAlgorithm, usize, [Vec<f64>; 3])> = Vec::new();
    for alg in AuthAlgorithm::ALL {
        let mac = AnyMac::new(alg, &key);
        for (i, &size) in SIZES.iter().enumerate() {
            let packet = &packets[i];
            let msg_len = msg_lens[i];
            let mut scratch = Vec::with_capacity(msg_len);
            let mut arms: [Box<dyn FnMut() -> u32 + '_>; 3] = [
                Box::new(|| mac.tag32(NONCE, &packet.icrc_message())),
                Box::new(|| {
                    packet.icrc_message_into(&mut scratch);
                    mac.tag32(NONCE, &scratch)
                }),
                Box::new(|| stream_tag(&mac, packet)),
            ];
            // Calibrate one shared batch size (≈ one sample window for the
            // slowest arm) while warming all arms up.
            let sample_window = config.measurement / (config.samples * ARMS.len() as u32);
            let mut batch: u64 = 1;
            let warmup_end = Instant::now() + config.warmup;
            loop {
                let mut slowest = Duration::ZERO;
                for run in arms.iter_mut() {
                    let start = Instant::now();
                    for _ in 0..batch {
                        std::hint::black_box(run());
                    }
                    slowest = slowest.max(start.elapsed());
                }
                if slowest * 10 >= sample_window && Instant::now() >= warmup_end {
                    break;
                }
                if slowest * 10 < sample_window {
                    batch = batch.saturating_mul(2);
                }
            }
            // Paired samples: one triple per pass.
            let mut sample_ns = [const { Vec::new() }; 3];
            for _ in 0..config.samples {
                for (a, run) in arms.iter_mut().enumerate() {
                    let start = Instant::now();
                    for _ in 0..batch {
                        std::hint::black_box(run());
                    }
                    sample_ns[a].push(start.elapsed().as_nanos() as f64 / batch as f64);
                }
            }
            drop(arms);
            let id = format!("{}-{size}B", alg.name());
            for (a, &arm) in ARMS.iter().enumerate() {
                harness
                    .group(arm)
                    .throughput_bytes(msg_len as u64)
                    .record(&id, &sample_ns[a]);
                meta.push((arm, alg, size, msg_len));
            }
            raw.push((alg, size, sample_ns));
        }
    }

    let cpu_hz = estimate_cpu_hz();
    let results = harness.results().to_vec();
    assert_eq!(results.len(), meta.len());
    let cell = |arm: &str, alg: AuthAlgorithm, size: usize| -> &Measurement {
        let idx = meta
            .iter()
            .position(|&(a, g, s, _)| a == arm && g == alg && s == size)
            .expect("every (arm, alg, size) was measured");
        &results[idx]
    };
    // The robust statistic for pass/fail comparisons: the *median paired
    // ratio*. Arms run back-to-back within each sample triple, so a clock
    // dip hits the ratio's numerator and denominator almost equally and
    // cancels — unlike cross-arm floors or means, which drift apart when
    // the throttle window moves mid-cell.
    let paired = |num: &str, den: &str, alg: AuthAlgorithm, size: usize| -> Vec<f64> {
        let ni = ARMS.iter().position(|&a| a == num).unwrap();
        let di = ARMS.iter().position(|&a| a == den).unwrap();
        let samples = &raw
            .iter()
            .find(|&&(g, s, _)| g == alg && s == size)
            .expect("every (alg, size) was measured")
            .2;
        let mut ratios: Vec<f64> = samples[ni]
            .iter()
            .zip(&samples[di])
            .map(|(n, d)| n / d)
            .collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ratios
    };
    let median = |ratios: &[f64]| ratios[ratios.len() / 2];

    // ---- Table 4, throughput form ----
    println!(
        "\nTable 4 as throughput (estimated clock {:.2} GHz; MB/s over the ICRC message):",
        cpu_hz / 1e9
    );
    let mut trows: Vec<Vec<String>> = Vec::new();
    for alg in AuthAlgorithm::ALL {
        for (i, &size) in SIZES.iter().enumerate() {
            let msg_len = msg_lens[i];
            for &arm in &ARMS {
                let m = cell(arm, alg, size);
                let mbps = m.bytes_per_sec().unwrap_or(0.0) / 1e6;
                let cpb = m.mean_ns * 1e-9 * cpu_hz / msg_len as f64;
                trows.push(vec![
                    arm.to_string(),
                    alg.name().to_string(),
                    size.to_string(),
                    format!("{mbps:.1}"),
                    format!("{cpb:.2}"),
                ]);
            }
        }
    }
    println!(
        "{}",
        render_table(
            &["path", "algorithm", "payload B", "MB/s", "cycles/byte"],
            &trows
        )
    );

    // ---- acceptance assertions (on median paired ratios) ----
    // Streaming UMAC keeps pace with the one-shot kernel at the NH chunk
    // size (1 KiB): the incremental state machine costs nothing material.
    // Smoke runs (5 samples over ~2 ms windows) gate structure and tag
    // equivalence in CI, not 5 %-level perf claims — widen every bar.
    let (med_bar, best_bar, beat_bar, broad_bar) = if smoke {
        (1.25, 1.10, 1.10, 1.25)
    } else {
        (1.05, 1.00, 1.00, 1.10)
    };
    // Even the paired median moves ±7 % run-to-run on this host, so the
    // gate is a disjunction: a genuine ≥5 % incremental-state overhead
    // would both push the median past the bar *and* keep streaming from
    // ever winning a paired triple.
    let ratios = paired("stream", "oneshot", AuthAlgorithm::Umac32, 1024);
    let (med, best) = (median(&ratios), ratios[0]);
    assert!(
        med <= med_bar || best <= best_bar,
        "streaming UMAC at 1 KiB must keep pace with one-shot \
         (median paired ratio {med:.3}, best {best:.3})"
    );
    // The new path beats the allocating pre-PR baseline for the paper's
    // recommended MAC wherever the allocation+copy is material…
    for &size in &[1024, 4096] {
        let r = median(&paired("stream", "baseline", AuthAlgorithm::Umac32, size));
        assert!(
            r < beat_bar,
            "streaming UMAC at {size} B must beat the allocating baseline \
             (median paired ratio {r:.3})"
        );
    }
    // …and never loses meaningfully to it for any algorithm or size.
    // This broad guard uses the *minimum* paired ratio: a genuine kernel
    // regression slows every sample triple, while this host's clock
    // noise (±15 % even on paired 20 µs AES samples) does not — at least
    // one triple must still show streaming at near-parity. The
    // per-packet allocation story at small sizes is told by the
    // allocation-counting tests, not by nanoseconds.
    for alg in AuthAlgorithm::ALL {
        for &size in &SIZES {
            let r = paired("stream", "baseline", alg, size)[0];
            assert!(
                r <= broad_bar,
                "{} at {size} B: streaming within {:.0}% of baseline in \
                 the best paired sample (min paired ratio {r:.3})",
                alg.name(),
                (broad_bar - 1.0) * 100.0
            );
        }
    }
    println!("OK: streaming path holds up against one-shot and beats the allocating baseline.");

    let path = harness
        .write_json(
            "mac_throughput",
            "mac_throughput",
            seed,
            Json::obj([
                (
                    "payload_sizes",
                    Json::arr(SIZES.iter().map(|&s| (s as u64).to_json())),
                ),
                (
                    "message_lens",
                    Json::arr(msg_lens.iter().map(|&l| (l as u64).to_json())),
                ),
                ("arms", Json::arr(ARMS.iter().map(|a| a.to_json()))),
                ("cpu_hz", cpu_hz.to_json()),
                ("smoke", smoke.to_json()),
            ]),
        )
        .expect("write BENCH_mac_throughput.json");
    println!("wrote {}", path.display());
}
