//! Ablation studies for the design choices DESIGN.md calls out, plus the
//! §7 residual threats the paper flags as future work:
//!
//! 1. SIF sensitivity to attack probability (the paper pins 1 % and notes
//!    it dominates SIF's low-load numbers).
//! 2. The valid-P_Key flood (§7): filtering is blind to it, by design.
//! 3. VL arbitration policy: strict priority vs IBA-style weighted tables.
//! 4. Partial-coverage MAC (§7 "trading off strength and performance"):
//!    throughput and detection rate vs coverage.
//! 5. UMAC tag length vs forgery bound (analytic).
//!
//! Usage: `ablations [--quick] [--only N] [--seed S]`

use bench::{arg_value, measure_throughput, render_table, seed_arg};
use ib_crypto::partial_mac::PartialMac;
use ib_crypto::umac::Umac;
use ib_mgmt::enforcement::EnforcementKind;
use ib_runtime::Seed;
use ib_security::experiments::{fig5_config, run_seed_averaged};
use ib_sim::config::{ArbitrationPolicy, AttackKeys, SimConfig, TrafficConfig};
use ib_sim::time::{MS, US};

fn quick_adjust(cfg: &mut SimConfig, quick: bool) {
    if quick {
        cfg.duration = 3 * MS;
        cfg.warmup = 300 * US;
    }
}

fn ablation_attack_probability(quick: bool, seeds: u64, seed: Seed) {
    println!("Ablation 1: SIF vs IF across attack probability (load 50%)");
    let mut rows = Vec::new();
    for &prob in &[0.001f64, 0.01, 0.1, 1.0] {
        for kind in [EnforcementKind::If, EnforcementKind::Sif] {
            let mut cfg = fig5_config(0.5, kind);
            cfg.seed = seed;
            cfg.attack_probability = prob;
            quick_adjust(&mut cfg, quick);
            let p = run_seed_averaged(&cfg, seeds);
            rows.push(vec![
                format!("{prob}"),
                kind.label().to_string(),
                format!("{:.2}", p.legit_queuing_us + p.legit_network_us),
                format!("{:.4}", p.lookup_cycles as f64 / p.generated.max(1) as f64),
                p.hca_blocked.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "attack prob",
                "method",
                "total delay (us)",
                "lookups/pkt",
                "leaked to HCAs"
            ],
            &rows
        )
    );
    println!(
        "Reading: SIF's lookup cost scales with attack probability (Table 2's\n\
         Pr(n) term); IF pays a constant lookup on every packet.\n"
    );
}

fn ablation_valid_pkey(quick: bool, seeds: u64, seed: Seed) {
    println!("Ablation 2: the §7 valid-P_Key flood — filtering is blind to it");
    let mut rows = Vec::new();
    for (label, keys, kind) in [
        (
            "invalid keys, SIF",
            AttackKeys::RandomInvalid,
            EnforcementKind::Sif,
        ),
        ("valid keys, SIF", AttackKeys::Valid, EnforcementKind::Sif),
        ("valid keys, DPT", AttackKeys::Valid, EnforcementKind::Dpt),
    ] {
        let mut cfg = SimConfig {
            seed,
            num_attackers: 4,
            attack_probability: 1.0,
            attack_keys: keys,
            enforcement: kind,
            traffic: TrafficConfig {
                realtime_load: 0.25,
                best_effort_load: 0.30,
                realtime_backoff_queue: 8,
            },
            duration: 6 * MS,
            warmup: 600 * US,
            ..SimConfig::default()
        };
        quick_adjust(&mut cfg, quick);
        let p = run_seed_averaged(&cfg, seeds);
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", p.be_queuing_us),
            p.filter_drops.to_string(),
            p.traps.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["scenario", "BE queuing (us)", "filter drops", "traps"],
            &rows
        )
    );
    println!(
        "Reading: with valid keys nothing traps and nothing is dropped — the\n\
         flood must be handled by rate-based defenses, which the paper defers\n\
         to future work.\n"
    );
}

fn ablation_arbitration(quick: bool, seeds: u64, seed: Seed) {
    println!("Ablation 3: VL arbitration policy under realtime pressure");
    let mut rows = Vec::new();
    for (label, arb) in [
        ("strict priority", ArbitrationPolicy::StrictPriority),
        (
            "weighted, limit 4",
            ArbitrationPolicy::Weighted { high_limit: 4 },
        ),
        (
            "weighted, limit 1",
            ArbitrationPolicy::Weighted { high_limit: 1 },
        ),
    ] {
        let mut cfg = SimConfig {
            seed,
            arbitration: arb,
            traffic: TrafficConfig {
                realtime_load: 0.55,
                best_effort_load: 0.25,
                realtime_backoff_queue: 8,
            },
            duration: 6 * MS,
            warmup: 600 * US,
            ..SimConfig::default()
        };
        quick_adjust(&mut cfg, quick);
        let p = run_seed_averaged(&cfg, seeds);
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", p.rt_queuing_us),
            format!("{:.2}", p.rt_network_us),
            format!("{:.2}", p.be_queuing_us),
            format!("{:.2}", p.be_network_us),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["policy", "RT queue", "RT net", "BE queue", "BE net"],
            &rows
        )
    );
    println!(
        "Reading: weighted tables trade a little realtime latency for\n\
         best-effort service; strict priority is the isolation upper bound\n\
         (what Figure 1a's flat realtime curve assumes).\n"
    );
}

fn ablation_partial_mac(quick: bool) {
    println!("Ablation 4: partial-coverage MAC (§7 strength/speed trade-off)");
    let key = [7u8; 16];
    let msg = vec![0xA5u8; 8192];
    let target_ms = if quick { 20 } else { 150 };
    let mut rows = Vec::new();

    // Full UMAC and HMAC-SHA1 as the fast/slow full-coverage references —
    // the 2000-era partial-MAC idea targets deployments stuck with the
    // slow one.
    let umac = Umac::new(&key);
    let full_tp = {
        let mut nonce = 0u64;
        measure_throughput(msg.len(), target_ms, || {
            nonce += 1;
            std::hint::black_box(umac.tag32(nonce, std::hint::black_box(&msg)));
        })
    };
    rows.push(vec![
        "UMAC (full)".into(),
        "100%".into(),
        format!("{:.2}", full_tp * 8.0 / 1e9),
        "~2^-30".into(),
    ]);
    let sha1_tp = {
        let msg = msg.clone();
        measure_throughput(msg.len(), target_ms, move || {
            std::hint::black_box(ib_crypto::hmac::Hmac::<ib_crypto::sha1::Sha1>::tag32(
                &key,
                std::hint::black_box(&msg),
            ));
        })
    };
    rows.push(vec![
        "HMAC-SHA1 (full)".into(),
        "100%".into(),
        format!("{:.2}", sha1_tp * 8.0 / 1e9),
        "~2^-32".into(),
    ]);

    for &coverage in &[0.5f64, 0.25, 0.125] {
        let pm = PartialMac::new(&key, coverage);
        let tp = {
            let mut nonce = 0u64;
            let pm = pm.clone();
            let msg = msg.clone();
            measure_throughput(msg.len(), target_ms, move || {
                nonce += 1;
                std::hint::black_box(pm.tag32(nonce, std::hint::black_box(&msg)));
            })
        };
        // Empirical single-byte-tamper detection rate (one probe per block).
        let tag = pm.tag32(42, &msg);
        let mut caught = 0;
        let mut tested = 0;
        for i in (0..msg.len()).step_by(64) {
            let mut t = msg.clone();
            t[i] ^= 1;
            if !pm.verify(42, &t, tag) {
                caught += 1;
            }
            tested += 1;
        }
        rows.push(vec![
            format!("PartialMac {:.0}%", coverage * 100.0),
            format!("{:.1}%", 100.0 * caught as f64 / tested as f64),
            format!("{:.2}", tp * 8.0 / 1e9),
            format!("~{:.2}", pm.miss_probability()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "MAC",
                "tamper detection",
                "Gb/s (this CPU)",
                "single-mod forgery prob"
            ],
            &rows
        )
    );
    println!(
        "Reading: detection tracks coverage, and even 12.5 % coverage beats\n\
         CRC's forgery probability of 1 (the §7 argument). The speed side of\n\
         the trade-off only pays against HMAC-class MACs (~40x here) — an\n\
         NH-based UMAC already runs at memcpy speed, so sampling+copying\n\
         costs more than it saves. That is historically faithful: the ACSA\n\
         trade-off predates fast universal hashing being widely available.\n"
    );
}

fn ablation_tag_length() {
    println!("Ablation 5: UMAC tag length vs forgery bound (analytic)");
    let rows = vec![
        vec![
            "32-bit (ICRC slot)".into(),
            "2^-30".into(),
            "fits ICRC field unchanged".into(),
        ],
        vec![
            "64-bit (2 tags)".into(),
            "2^-60".into(),
            "would need ICRC+VCRC slots; breaks VCRC".into(),
        ],
        vec![
            "16-bit (half slot)".into(),
            "2^-15".into(),
            "leaves 16 bits of CRC alongside".into(),
        ],
    ];
    println!(
        "{}",
        render_table(&["tag", "forgery bound", "wire consequence"], &rows)
    );
    println!(
        "Reading: 32 bits is the sweet spot the wire format gives for free —\n\
         the paper's central compatibility argument.\n"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seeds = if quick { 2 } else { 3 };
    let only: Option<u32> = arg_value(&args, "--only").and_then(|v| v.parse().ok());
    let seed = seed_arg(&args);

    println!("Ablation studies (seed {seed})\n");
    if only.is_none() || only == Some(1) {
        ablation_attack_probability(quick, seeds, seed);
    }
    if only.is_none() || only == Some(2) {
        ablation_valid_pkey(quick, seeds, seed);
    }
    if only.is_none() || only == Some(3) {
        ablation_arbitration(quick, seeds, seed);
    }
    if only.is_none() || only == Some(4) {
        ablation_partial_mac(quick);
    }
    if only.is_none() || only == Some(5) {
        ablation_tag_length();
    }
}
