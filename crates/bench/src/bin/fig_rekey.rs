//! Key-plane disruption experiment — a fleet of RC flows crosses the
//! mesh while the replicated subnet manager rotates the partition secret
//! underneath them, swept over (a) the rotation period and (b) a
//! leader-kill fault injected mid-run.
//!
//! The point of the figure: epoch re-keying is invisible to reliable
//! transport. Every arm reaches 100% eventual delivery (packets sealed
//! under a superseded epoch heal through ordinary retransmission), a
//! stale-epoch attacker who holds captured packets past the grace window
//! is rejected by the epoch layer itself — zero admissions — and killing
//! the leader costs a bounded goodput dip: the staggered election
//! installs a successor whose healing rotation re-keys every member CA.
//!
//! Usage: `fig_rekey [--smoke] [--flows N] [--seed S]`

use bench::{arg_value, bench_doc, render_table, seed_arg, write_bench_json};
use ib_runtime::{Json, ToJson};
use ib_sim::time::{MS, US};
use ib_sim::SimTime;
use ib_sm::{run_rekey_sim, RekeyConfig, RekeyReport};

/// One swept arm of the experiment.
#[derive(Debug, Clone, Copy)]
struct Arm {
    /// Stable label for the table / JSON.
    label: &'static str,
    /// Rotation period (0 = key plane idle, PSN window is the only
    /// replay defence).
    period: SimTime,
    /// Leader-kill instant (0 = no fault).
    kill_at: SimTime,
}

fn arms(smoke: bool) -> Vec<Arm> {
    if smoke {
        vec![
            Arm {
                label: "static",
                period: 0,
                kill_at: 0,
            },
            Arm {
                label: "rot-60us",
                period: 60 * US,
                kill_at: 0,
            },
            Arm {
                label: "rot-120us",
                period: 120 * US,
                kill_at: 0,
            },
            Arm {
                label: "kill-100us",
                period: 60 * US,
                kill_at: 100 * US,
            },
        ]
    } else {
        // At 1024 QPs the mesh runs near capacity, so queueing delay —
        // not RTT — bounds how fast the key plane may cut over: the
        // period + grace must exceed the worst in-flight time, exactly
        // as production rotation periods dwarf delivery delays.
        vec![
            Arm {
                label: "static",
                period: 0,
                kill_at: 0,
            },
            Arm {
                label: "rot-2ms",
                period: 2 * MS,
                kill_at: 0,
            },
            Arm {
                label: "rot-4ms",
                period: 4 * MS,
                kill_at: 0,
            },
            Arm {
                label: "rot-8ms",
                period: 8 * MS,
                kill_at: 0,
            },
            Arm {
                label: "kill-3ms",
                period: 2 * MS,
                kill_at: 3 * MS,
            },
        ]
    }
}

fn config_for(seed: u64, smoke: bool, flows: usize, arm: Arm) -> RekeyConfig {
    let mut cfg = RekeyConfig {
        seed,
        flows,
        messages: if smoke { 8 } else { 12 },
        payload_len: 256,
        // Full mode paces each flow to keep aggregate offered load just
        // under fabric capacity; queueing stays bounded below the grace.
        post_interval: if smoke { 25 * US } else { 800 * US },
        replicas: if smoke { 3 } else { 5 },
        rotation_period: arm.period,
        grace: if smoke { 80 * US } else { 2 * MS },
        kill_leader_at: arm.kill_at,
        stale_every: 2,
        // Longer than every swept rotation period + grace: by the time a
        // captured packet is re-injected its epoch is retired.
        stale_delay: if smoke { 300 * US } else { 12 * MS },
        ..RekeyConfig::default()
    };
    cfg.sim.duration = 2 * MS;
    cfg.sim.warmup = 200 * US;
    cfg
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--quick");
    // Each flow is a requester/responder QP pair: the full run drives
    // 1024 QPs of RC traffic through the rotating key plane.
    let flows: usize = arg_value(&args, "--flows")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 48 } else { 512 });
    let seed = seed_arg(&args);

    let swept = arms(smoke);
    let mut points: Vec<(Arm, RekeyReport)> = Vec::new();
    for &arm in &swept {
        let cfg = config_for(seed.0, smoke, flows, arm);
        points.push((arm, run_rekey_sim(&cfg)));
    }

    println!(
        "Epoch re-keying under load: rotation sweep + leader failover \
         (seed {seed}, {flows} flows = {} QPs)",
        flows * 2
    );
    let table: Vec<Vec<String>> = points
        .iter()
        .map(|(arm, r)| {
            vec![
                arm.label.to_string(),
                format!("{}/{}", r.delivered, r.expected),
                format!("{:.3}", r.goodput_gbps),
                r.rotations.to_string(),
                r.final_epoch.to_string(),
                r.key_updates_tx.to_string(),
                format!("{}/{}", r.stale_injected, r.stale_admitted),
                r.rejected_stale_epoch.to_string(),
                r.rejected_future_epoch.to_string(),
                r.retransmits.to_string(),
                format!("{:.2}", r.goodput_dip_frac),
                format!("{:.1}", r.time_to_recover_us),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "arm",
                "delivered",
                "goodput (Gb/s)",
                "rotations",
                "epoch",
                "key upd",
                "stale inj/adm",
                "rej stale-ep",
                "rej future-ep",
                "retrans",
                "dip frac",
                "recover (us)"
            ],
            &table
        )
    );

    // ---- acceptance assertions ----
    for (arm, r) in &points {
        let tag = arm.label;
        assert!(
            r.delivered == r.expected && !r.failed && !r.timed_out,
            "{tag}: 100% eventual delivery required, got {}/{}",
            r.delivered,
            r.expected
        );
        assert_eq!(r.payload_mismatches, 0, "{tag}: every byte verified");
        assert!(r.stale_injected > 0, "{tag}: attacker must be active");
        assert_eq!(
            r.stale_admitted, 0,
            "{tag}: zero admissions under a stale epoch"
        );
        assert!(r.mgmt_delivered > 0, "{tag}: SM plane used the fabric");
        if arm.period > 0 {
            assert!(r.rotations >= 1, "{tag}: key plane must rotate");
            assert!(r.final_epoch >= 1, "{tag}: CAs must install new epochs");
            assert!(
                r.rejected_stale_epoch > 0,
                "{tag}: held-back replays must die at the epoch check"
            );
        } else {
            assert_eq!(r.rotations, 0, "{tag}: static arm never rotates");
            assert_eq!(r.rejected_stale_epoch, 0, "{tag}: no epochs to retire");
        }
        if arm.kill_at > 0 {
            assert_eq!(r.leader_kills, 1, "{tag}: the fault fired");
            assert!(r.takeovers >= 1, "{tag}: a successor claimed the term");
            assert!(
                r.time_to_recover_us > 0.0,
                "{tag}: the new leader finished re-keying"
            );
            assert!(
                (0.0..=1.0).contains(&r.goodput_dip_frac),
                "{tag}: goodput dip is a fraction"
            );
        }
    }
    println!(
        "OK: 100% delivery in every arm; zero stale-epoch admissions; \
         failover re-keyed in {:.1} us.",
        points
            .iter()
            .find(|(a, _)| a.kill_at > 0)
            .map(|(_, r)| r.time_to_recover_us)
            .unwrap_or(0.0)
    );

    // Determinism: the same seed reproduces the failover point
    // bit-for-bit.
    let kill_arm = *swept.iter().find(|a| a.kill_at > 0).expect("kill arm");
    let headline = &points.iter().find(|(a, _)| a.kill_at > 0).unwrap().1;
    let again = run_rekey_sim(&config_for(seed.0, smoke, flows, kill_arm));
    assert_eq!(
        headline.to_json().to_string(),
        again.to_json().to_string(),
        "identical output across two same-seed runs"
    );

    let doc = bench_doc(
        "fig_rekey",
        seed,
        Json::obj([
            (
                "arms",
                Json::arr(swept.iter().map(|a| {
                    Json::obj([
                        ("label", a.label.to_json()),
                        ("rotation_period_ps", a.period.to_json()),
                        ("kill_leader_at_ps", a.kill_at.to_json()),
                    ])
                })),
            ),
            ("flows", (flows as u64).to_json()),
            ("qps", (flows as u64 * 2).to_json()),
            ("base", config_for(seed.0, smoke, flows, swept[0]).to_json()),
            ("smoke", smoke.to_json()),
        ]),
        points
            .iter()
            .map(|(arm, r)| {
                Json::obj([
                    ("arm", arm.label.to_json()),
                    ("rotation_period_ps", arm.period.to_json()),
                    ("kill_leader_at_ps", arm.kill_at.to_json()),
                    ("report", r.to_json()),
                ])
            })
            .collect(),
    );
    let path = write_bench_json("fig_rekey", &doc).expect("write BENCH_fig_rekey.json");
    println!("wrote {}", path.display());
}
