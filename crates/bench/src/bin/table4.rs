//! Table 4 — time & forgery complexity of the authentication candidates.
//!
//! Two halves:
//! 1. the paper's literature-derived rows (cycles/byte normalized to
//!    350 MHz), recomputed from the registry constants;
//! 2. *measured* rows for this repository's own implementations: wall-clock
//!    throughput on the paper's 1500-bit (188-byte) message size, converted
//!    to cycles/byte against an estimated CPU clock and renormalized.
//!
//! Absolute numbers differ from 1999-2004 hardware, but the ordering
//! CRC > UMAC >> MD5 > SHA1 must (and does) hold.

use bench::{estimate_cpu_hz, measure_throughput, render_table};
use ib_crypto::crc::crc32_ieee;
use ib_crypto::hmac::Hmac;
use ib_crypto::mac::AuthAlgorithm;
use ib_crypto::md5::Md5;
use ib_crypto::pmac::Pmac;
use ib_crypto::sha1::Sha1;
use ib_crypto::stream_mac::StreamMac;
use ib_crypto::umac::Umac;
use ib_security::analysis::macs::{
    cycles_per_byte_from_throughput, expected_forgery_attempts, gbps_from_cycles_per_byte,
    paper_table4, umac_link_speed_check, TABLE4_CLOCK_MHZ,
};

/// The paper's Table 4 message size: "a 4-byte authentication tag from a
/// 1500 bits message".
const MSG_BYTES: usize = 1500 / 8;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let target_ms = if quick { 20 } else { 300 };

    // ---- paper rows ----
    println!("Table 4. Time & forgery complexity — paper reference rows (350 MHz)");
    let rows: Vec<Vec<String>> = paper_table4()
        .iter()
        .map(|r| {
            vec![
                r.algorithm.to_string(),
                format!("{:.2}", r.cycles_per_byte),
                format!("{:.2}", r.gbps),
                if r.forgery_log2 == 0 {
                    "1".to_string()
                } else {
                    format!("~2^{}", r.forgery_log2)
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Algorithm", "Cycles/byte", "Gbits/sec", "Forgery Prob."],
            &rows
        )
    );

    // ---- measured rows ----
    let cpu_hz = estimate_cpu_hz();
    println!(
        "Measured on this machine (estimated clock {:.2} GHz), {MSG_BYTES}-byte messages:",
        cpu_hz / 1e9
    );
    let msg = vec![0xA5u8; MSG_BYTES];
    let key = [7u8; 16];
    let umac = Umac::new(&key);
    let stream = StreamMac::new(&key);
    let pmac = Pmac::new(&key);

    let mut nonce = 0u64;
    let mut measured: Vec<(AuthAlgorithm, f64)> = Vec::new();
    let cases: Vec<(AuthAlgorithm, Box<dyn FnMut()>)> = vec![
        (
            AuthAlgorithm::Icrc,
            Box::new(|| {
                std::hint::black_box(crc32_ieee(std::hint::black_box(&msg)));
            }),
        ),
        (AuthAlgorithm::Umac32, {
            let msg = msg.clone();
            let umac = umac.clone();
            Box::new(move || {
                nonce += 1;
                std::hint::black_box(umac.tag32(nonce, std::hint::black_box(&msg)));
            })
        }),
        (AuthAlgorithm::HmacMd5, {
            let msg = msg.clone();
            Box::new(move || {
                std::hint::black_box(Hmac::<Md5>::tag32(&key, std::hint::black_box(&msg)));
            })
        }),
        (AuthAlgorithm::HmacSha1, {
            let msg = msg.clone();
            Box::new(move || {
                std::hint::black_box(Hmac::<Sha1>::tag32(&key, std::hint::black_box(&msg)));
            })
        }),
        (AuthAlgorithm::StreamMac, {
            let msg = msg.clone();
            let stream = stream.clone();
            let mut n = 0u64;
            Box::new(move || {
                n += 1;
                std::hint::black_box(stream.tag32(n, std::hint::black_box(&msg)));
            })
        }),
        (AuthAlgorithm::Pmac, {
            let msg = msg.clone();
            let pmac = pmac.clone();
            let mut n = 0u64;
            Box::new(move || {
                n += 1;
                std::hint::black_box(pmac.tag32(n, std::hint::black_box(&msg)));
            })
        }),
    ];

    let mut mrows = Vec::new();
    for (alg, mut f) in cases {
        let bytes_per_sec = measure_throughput(MSG_BYTES, target_ms, &mut *f);
        let cpb = cycles_per_byte_from_throughput(bytes_per_sec, cpu_hz);
        let gbps_here = bytes_per_sec * 8.0 / 1e9;
        let gbps_350 = gbps_from_cycles_per_byte(cpb, TABLE4_CLOCK_MHZ);
        measured.push((alg, cpb));
        mrows.push(vec![
            alg.name().to_string(),
            format!("{cpb:.2}"),
            format!("{gbps_here:.2}"),
            format!("{gbps_350:.3}"),
            if alg.forgery_log2() == 0 {
                "1".to_string()
            } else {
                format!(
                    "~2^{} ({:.1e} attempts)",
                    alg.forgery_log2(),
                    expected_forgery_attempts(alg.forgery_log2())
                )
            },
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Algorithm",
                "Cycles/byte",
                "Gb/s (this CPU)",
                "Gb/s @350MHz",
                "Forgery Prob."
            ],
            &mrows
        )
    );

    // ---- shape checks ----
    let cpb = |alg: AuthAlgorithm| measured.iter().find(|(a, _)| *a == alg).unwrap().1;
    assert!(
        cpb(AuthAlgorithm::Icrc) < cpb(AuthAlgorithm::HmacMd5),
        "CRC must be cheaper than HMAC-MD5"
    );
    assert!(
        cpb(AuthAlgorithm::Umac32) < cpb(AuthAlgorithm::HmacMd5),
        "UMAC must beat HMAC-MD5"
    );
    assert!(
        cpb(AuthAlgorithm::HmacMd5) < cpb(AuthAlgorithm::HmacSha1),
        "MD5 must beat SHA1"
    );
    println!("OK: ordering CRC < UMAC < HMAC-MD5 < HMAC-SHA1 (cycles/byte) holds.");

    // ---- §6 link-speed feasibility ----
    let (umac_gbps, link, feasible) = umac_link_speed_check();
    println!();
    println!(
        "Link-speed check (§5.2/§6): UMAC at 200 MHz = {umac_gbps:.2} Gb/s vs {link} Gb/s 1x link -> {}",
        if feasible { "feasible (within pipeline tolerance)" } else { "NOT feasible" }
    );
    assert!(feasible);
}
