//! Table 2 — partition enforcement overhead.
//!
//! Evaluates the paper's closed-form memory and lookup-cost model over a
//! parameter grid, then cross-checks the lookup column against the
//! simulator's actual per-packet lookup-cycle counters.

use bench::render_table;
use ib_mgmt::enforcement::EnforcementKind;
use ib_security::analysis::enforcement::EnforcementModel;
use ib_security::experiments::{fig5_config, run_many};
use ib_sim::time::{MS, US};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");

    // ---- symbolic table, as printed in the paper ----
    println!("Table 2. Partition enforcement overhead (symbolic)");
    let sym = vec![
        vec![
            "Memory for one switch".into(),
            "n x p".into(),
            "p".into(),
            "p + Pr(n) x MIN(Avg(p),p)".into(),
        ],
        vec![
            "Memory for all switches".into(),
            "n x p x s".into(),
            "p x n".into(),
            "p x n + Pr(n) x MIN(Avg(p),p) x n".into(),
        ],
        vec![
            "Table lookups/packet".into(),
            "f(n x p)".into(),
            "f(p)".into(),
            "Pr(n) x f(MIN(Avg(p),p))".into(),
        ],
    ];
    println!("{}", render_table(&["quantity", "DPT", "IF", "SIF"], &sym));

    // ---- numeric instantiation over a grid ----
    println!("Numeric instantiation (entries / expected probes per packet):");
    let mut rows = Vec::new();
    for p in [1usize, 4, 16, 64] {
        let model = EnforcementModel::paper_testbed(p);
        for row in model.table2() {
            rows.push(vec![
                format!("p={p}"),
                row.kind.label().to_string(),
                format!("{:.2}", row.memory_per_switch),
                format!("{:.2}", row.memory_total),
                format!("{:.4}", row.lookups_per_packet),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "partitions/node",
                "method",
                "mem/switch",
                "mem total",
                "lookups/pkt"
            ],
            &rows
        )
    );

    // ---- simulator cross-check ----
    // Run the Figure 5 scenario (4 attackers, 1 % attack probability) per
    // method and compare measured lookup cycles per delivered packet with
    // the model's prediction ordering: DPT >> IF > SIF ~ 0.
    println!("Simulator cross-check (lookup cycles per generated packet):");
    let kinds = [
        EnforcementKind::Dpt,
        EnforcementKind::If,
        EnforcementKind::Sif,
    ];
    let configs = kinds
        .iter()
        .map(|&k| {
            let mut cfg = fig5_config(0.5, k);
            if quick {
                cfg.duration = 2 * MS;
                cfg.warmup = 200 * US;
            }
            cfg
        })
        .collect();
    let reports = run_many(configs);
    let mut sim_rows = Vec::new();
    let mut per_packet = Vec::new();
    for (kind, r) in kinds.iter().zip(reports.iter()) {
        let per = r.lookup_cycles as f64 / r.generated.max(1) as f64;
        per_packet.push(per);
        sim_rows.push(vec![
            kind.label().to_string(),
            r.lookup_cycles.to_string(),
            r.generated.to_string(),
            format!("{per:.4}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["method", "lookup cycles", "packets", "cycles/pkt"],
            &sim_rows
        )
    );
    assert!(
        per_packet[0] > per_packet[1],
        "DPT per-packet lookups must exceed IF (per-hop vs per-ingress)"
    );
    assert!(
        per_packet[2] < per_packet[1] * 0.5,
        "SIF must be far below IF when attacks are rare"
    );
    println!("OK: measured ordering DPT > IF >> SIF matches Table 2.");
}
