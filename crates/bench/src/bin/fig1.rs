//! Figure 1 — average queuing time & network latency under DoS attacks,
//! for realtime (a) and best-effort (b) traffic, vs number of attackers.
//!
//! Paper shape: with no attacker, queuing is a few µs and network ≈ 20 µs;
//! attackers multiply queuing time while network latency moves only
//! marginally; best-effort suffers more than realtime (VL priority).
//! Each point averages several random partition/attacker placements.
//!
//! Usage: `fig1 [--quick|--smoke] [--max-attackers N] [--seeds K] [--seed S]`
//! (`--smoke` is an alias for `--quick`, matching the other gated binaries).

use bench::{arg_value, bench_doc, render_table, seed_arg, write_bench_json};
use ib_runtime::{Json, ToJson};
use ib_security::experiments::{fig1_config, run_grid_seed_averaged, Fig1Row, DEFAULT_SEEDS};
use ib_sim::time::{MS, US};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "--smoke");
    let max: usize = arg_value(&args, "--max-attackers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    // Figure 1 is the cheapest sweep, so it affords extra seeds — attacker
    // placement dominates the variance of the middle points.
    let seeds: u64 = arg_value(&args, "--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 6 } else { DEFAULT_SEEDS + 4 });
    let seed = seed_arg(&args);

    // Build the whole grid up front, then let the flattened (point × seed)
    // runner shard the work across cores in one parallel scope.
    let bases: Vec<_> = (0..=max)
        .map(|attackers| {
            let mut cfg = fig1_config(attackers);
            cfg.seed = seed;
            if quick {
                cfg.duration = 3 * MS;
                cfg.warmup = 300 * US;
            }
            cfg
        })
        .collect();
    let rows: Vec<Fig1Row> = run_grid_seed_averaged(&bases, seeds)
        .into_iter()
        .enumerate()
        .map(|(attackers, p)| Fig1Row {
            attackers,
            rt_queuing_us: p.rt_queuing_us,
            rt_network_us: p.rt_network_us,
            be_queuing_us: p.be_queuing_us,
            be_network_us: p.be_network_us,
        })
        .collect();

    println!("Figure 1(a). Realtime traffic under DoS attack (seed {seed}, {seeds} seeds/point)");
    let a_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.attackers.to_string(),
                format!("{:.2}", r.rt_queuing_us),
                format!("{:.2}", r.rt_network_us),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["attackers", "queuing time (us)", "network latency (us)"],
            &a_rows
        )
    );

    println!("Figure 1(b). Best-effort traffic under DoS attack");
    let b_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.attackers.to_string(),
                format!("{:.2}", r.be_queuing_us),
                format!("{:.2}", r.be_network_us),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["attackers", "queuing time (us)", "network latency (us)"],
            &b_rows
        )
    );

    // ---- shape assertions (who wins, roughly by what factor) ----
    let base = &rows[0];
    let worst = &rows[rows.len() - 1];
    assert!(
        worst.be_queuing_us > base.be_queuing_us * 2.0,
        "best-effort queuing must blow up under attack: {} -> {}",
        base.be_queuing_us,
        worst.be_queuing_us
    );
    let q_growth = worst.be_queuing_us / base.be_queuing_us.max(1e-9);
    let n_growth = worst.be_network_us / base.be_network_us.max(1e-9);
    assert!(
        q_growth > n_growth,
        "queuing grows faster than network latency (paper's key observation)"
    );
    assert!(
        worst.be_queuing_us >= worst.rt_queuing_us,
        "DoS hurts best-effort at least as much as realtime (VL priority)"
    );
    assert!(
        worst.rt_network_us < base.rt_network_us * 2.0,
        "realtime network latency stays near-flat: {} -> {}",
        base.rt_network_us,
        worst.rt_network_us
    );
    println!("OK: Figure 1 shape holds (queuing explodes, latency ~flat, BE > RT).");

    let doc = bench_doc(
        "fig1",
        seed,
        Json::obj([
            ("max_attackers", (max as u64).to_json()),
            ("seeds_per_point", seeds.to_json()),
            ("quick", quick.to_json()),
        ]),
        rows.iter().map(Fig1Row::to_json).collect(),
    );
    let path = write_bench_json("fig1", &doc).expect("write BENCH_fig1.json");
    println!("wrote {}", path.display());
}
