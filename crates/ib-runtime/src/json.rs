//! A minimal JSON value, writer and parser.
//!
//! Replaces the serde derives the workspace used to carry: configs and
//! reports implement [`ToJson`] by hand (a few lines each), the writer
//! emits deterministic, insertion-ordered output for BENCH_*.json-style
//! result files, and the parser exists so round-trip tests can prove the
//! two sides agree. Not a general-purpose JSON library: no comments, no
//! NaN/Infinity (serialized as `null`), object keys stay in insertion
//! order.

use std::fmt;

/// A JSON document. Integers keep their own variants so `u64` seeds and
/// packet counters round-trip exactly (an f64 would truncate above 2⁵³).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from (key, value) pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(v) => Some(*v),
            Json::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Numeric coercion: any numeric variant as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a JSON document. Trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    // {:?} prints the shortest representation that parses
                    // back to the same f64, always with '.' or 'e'.
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure: a message plus the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000C}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not paired (the writer never
                            // emits them); map to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                None => return Err(self.err("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number chars are ASCII");
        if !is_float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Json::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            // Integer overflow: fall through to f64.
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("bad number"))
    }
}

/// Hand-rolled serialization hook replacing `#[derive(Serialize)]`.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

macro_rules! impl_tojson_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json { Json::U64(*self as u64) }
        }
    )*};
}
impl_tojson_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json { Json::I64(*self as i64) }
        }
    )*};
}
impl_tojson_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_canonical_forms() {
        let doc = Json::obj([
            ("name", Json::Str("SIF \"stateful\"".into())),
            ("count", Json::U64(42)),
            ("delta", Json::I64(-3)),
            ("mean", Json::F64(2.5)),
            ("whole", Json::F64(4.0)),
            ("on", Json::Bool(true)),
            ("none", Json::Null),
            ("tags", Json::arr([Json::U64(1), Json::U64(2)])),
        ]);
        assert_eq!(
            doc.to_string(),
            r#"{"name":"SIF \"stateful\"","count":42,"delta":-3,"mean":2.5,"whole":4.0,"on":true,"none":null,"tags":[1,2]}"#
        );
    }

    #[test]
    fn parses_what_it_writes() {
        let doc = Json::obj([
            ("seed", Json::U64(u64::MAX)),
            ("x", Json::F64(0.1 + 0.2)),
            ("neg", Json::I64(i64::MIN)),
            ("s", Json::Str("line\nbreak\tand \\ quote\"".into())),
            (
                "arr",
                Json::arr([Json::Null, Json::Bool(false), Json::F64(-1.5e-9)]),
            ),
            (
                "nested",
                Json::obj([
                    ("empty_arr", Json::arr([])),
                    ("empty_obj", Json::obj::<String>([])),
                ]),
            ),
        ]);
        let text = doc.to_string();
        let back = Json::parse(&text).expect("round trip parses");
        assert_eq!(back, doc);
    }

    #[test]
    fn u64_seeds_roundtrip_exactly() {
        // Above 2^53: an f64 path would corrupt this.
        let seed = 0xF6CF_6F5E_4F72_AE4D_u64;
        let text = Json::U64(seed).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(seed));
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5 , \"\\u0041\\n\" ] } ").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("A\n"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1 2",
            "{\"a\" 1}",
            "\"unterminated",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn accessors_and_coercion() {
        assert_eq!(Json::U64(7).as_f64(), Some(7.0));
        assert_eq!(Json::I64(-7).as_f64(), Some(-7.0));
        assert_eq!(Json::U64(7).as_i64(), Some(7));
        assert_eq!(Json::I64(-1).as_u64(), None);
        assert_eq!(Json::Str("x".into()).as_f64(), None);
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        let obj = Json::obj([("k", Json::Null)]);
        assert!(obj.get("k").is_some());
        assert!(obj.get("missing").is_none());
        assert!(Json::Null.get("k").is_none());
    }

    #[test]
    fn tojson_impls() {
        assert_eq!(5u16.to_json(), Json::U64(5));
        assert_eq!((-5i32).to_json(), Json::I64(-5));
        assert_eq!(1.5f64.to_json(), Json::F64(1.5));
        assert_eq!("hi".to_json(), Json::Str("hi".into()));
        assert_eq!(
            vec![1u64, 2].to_json(),
            Json::arr([Json::U64(1), Json::U64(2)])
        );
        assert_eq!(None::<u64>.to_json(), Json::Null);
        assert_eq!(Some(3u64).to_json(), Json::U64(3));
    }
}
