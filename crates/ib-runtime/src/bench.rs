//! Micro-benchmark harness for `harness = false` bench targets.
//!
//! Replaces the criterion dependency with the subset the workspace's
//! benches actually use: named groups, per-benchmark warmup, adaptive
//! batch sizing, summary statistics over timed samples, and optional
//! bytes/s throughput reporting. Results print as aligned plain text
//! and serialize to the workspace's standard `BENCH_*.json` document
//! shape (experiment / seed / config / points) via
//! [`Harness::to_json`] / [`Harness::write_json`].
//!
//! Statistics are criterion-grade rather than raw: each benchmark's
//! samples pass through Tukey-fence outlier rejection (scheduler
//! preemptions and frequency-transition spikes land far outside the
//! inter-quartile fences) before the mean/stddev, and the mean carries a
//! 95% percentile-bootstrap confidence interval computed with the
//! workspace's deterministic [`Rng`] so reruns reproduce it bit-exactly.

use std::time::{Duration, Instant};

use crate::json::{Json, ToJson};
use crate::rng::{Rng, Seed};

/// Sampling parameters. `quick()` keeps smoke runs fast; defaults mirror
/// the criterion settings the benches used (20 samples, ~2 s measurement,
/// 500 ms warmup).
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    pub warmup: Duration,
    pub measurement: Duration,
    pub samples: u32,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            warmup: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            samples: 20,
        }
    }
}

impl BenchConfig {
    /// Reduced sampling for smoke tests (`--quick`).
    pub fn quick() -> Self {
        BenchConfig {
            warmup: Duration::from_millis(50),
            measurement: Duration::from_millis(200),
            samples: 5,
        }
    }
}

/// One benchmark's measurements. Mean/stddev/CI are computed over the
/// outlier-filtered samples; `min_ns` is over all samples (the fastest
/// observation is never an artifact worth discarding).
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id, `group/name`.
    pub id: String,
    /// Mean time per iteration, ns.
    pub mean_ns: f64,
    /// Standard deviation across samples, ns.
    pub stddev_ns: f64,
    /// Fastest sample, ns.
    pub min_ns: f64,
    /// Lower edge of the 95% bootstrap confidence interval on the mean, ns.
    pub ci95_lo_ns: f64,
    /// Upper edge of the 95% bootstrap confidence interval on the mean, ns.
    pub ci95_hi_ns: f64,
    /// Samples discarded by the Tukey fences.
    pub outliers_rejected: u32,
    /// Bytes processed per iteration, if declared.
    pub throughput_bytes: Option<u64>,
}

impl Measurement {
    /// Bytes/second implied by the mean time, if throughput was declared.
    pub fn bytes_per_sec(&self) -> Option<f64> {
        self.throughput_bytes
            .map(|b| b as f64 / (self.mean_ns / 1e9))
    }

    /// JSON object form (one `points` row of the standard document).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("id", self.id.to_json()),
            ("mean_ns", self.mean_ns.to_json()),
            ("stddev_ns", self.stddev_ns.to_json()),
            ("min_ns", self.min_ns.to_json()),
            ("ci95_lo_ns", self.ci95_lo_ns.to_json()),
            ("ci95_hi_ns", self.ci95_hi_ns.to_json()),
            ("outliers_rejected", self.outliers_rejected.to_json()),
        ];
        if let Some(bytes) = self.throughput_bytes {
            pairs.push(("bytes_per_iter", bytes.to_json()));
            if let Some(bps) = self.bytes_per_sec() {
                pairs.push(("bytes_per_sec", bps.to_json()));
            }
        }
        Json::obj(pairs)
    }
}

/// Linear-interpolation quantile (R type 7, what criterion and numpy
/// default to) over an ascending-sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Tukey-fence outlier rejection: keep samples inside
/// `[Q1 - 1.5·IQR, Q3 + 1.5·IQR]`. Returns the survivors and the
/// rejection count; if fewer than two samples survive (degenerate
/// spread), the original set is returned untouched.
fn reject_outliers(samples: &[f64]) -> (Vec<f64>, u32) {
    if samples.len() < 4 {
        return (samples.to_vec(), 0);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let q1 = quantile(&sorted, 0.25);
    let q3 = quantile(&sorted, 0.75);
    let iqr = q3 - q1;
    let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let kept: Vec<f64> = samples
        .iter()
        .copied()
        .filter(|s| (lo..=hi).contains(s))
        .collect();
    if kept.len() < 2 {
        return (samples.to_vec(), 0);
    }
    let rejected = (samples.len() - kept.len()) as u32;
    (kept, rejected)
}

/// Resamples drawn per bootstrap interval.
const BOOTSTRAP_RESAMPLES: usize = 200;

/// 95% percentile-bootstrap confidence interval on the mean:
/// [`BOOTSTRAP_RESAMPLES`] with-replacement resample means, 2.5th and
/// 97.5th percentiles. Deterministic in the caller's RNG.
fn bootstrap_ci95(samples: &[f64], rng: &mut Rng) -> (f64, f64) {
    if samples.len() < 2 {
        let v = samples.first().copied().unwrap_or(0.0);
        return (v, v);
    }
    let mut means = Vec::with_capacity(BOOTSTRAP_RESAMPLES);
    for _ in 0..BOOTSTRAP_RESAMPLES {
        let sum: f64 = (0..samples.len())
            .map(|_| samples[rng.gen_range(0..samples.len())])
            .sum();
        means.push(sum / samples.len() as f64);
    }
    means.sort_by(f64::total_cmp);
    (quantile(&means, 0.025), quantile(&means, 0.975))
}

/// The top-level harness a bench target's `main` drives.
pub struct Harness {
    config: BenchConfig,
    filter: Option<String>,
    results: Vec<Measurement>,
}

impl Harness {
    /// Build from CLI arguments: `--quick` shrinks sampling, the first
    /// non-flag argument becomes a substring filter on benchmark ids
    /// (criterion's convention). Harness flags cargo may pass
    /// (`--bench`, `--test`) are ignored.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let quick = args.iter().any(|a| a == "--quick");
        let filter = args.iter().find(|a| !a.starts_with('-')).cloned();
        Harness {
            config: if quick {
                BenchConfig::quick()
            } else {
                BenchConfig::default()
            },
            filter,
            results: Vec::new(),
        }
    }

    /// Build with explicit sampling and no id filter. The constructor for
    /// binaries that parse their own CLI (where `from_args`'s
    /// first-non-flag-argument-is-a-filter convention would eat flag
    /// values like `--seed 42`).
    pub fn new(config: BenchConfig) -> Self {
        Harness {
            config,
            filter: None,
            results: Vec::new(),
        }
    }

    /// Override sampling (tests use this to stay fast).
    pub fn with_config(mut self, config: BenchConfig) -> Self {
        self.config = config;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            throughput_bytes: None,
        }
    }

    /// All measurements taken so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// The standard experiment result document: `experiment` / `seed` /
    /// `config` / `points`, with one point per measurement. `extra`'s
    /// entries are appended to the sampling parameters inside `config`
    /// (pass `Json::obj([])` when there are none).
    pub fn to_json(&self, experiment: &str, seed: Seed, extra: Json) -> Json {
        let mut config = vec![
            (
                "warmup_ms".to_string(),
                (self.config.warmup.as_millis() as u64).to_json(),
            ),
            (
                "measurement_ms".to_string(),
                (self.config.measurement.as_millis() as u64).to_json(),
            ),
            ("samples".to_string(), self.config.samples.to_json()),
        ];
        if let Json::Obj(pairs) = extra {
            config.extend(pairs);
        }
        Json::obj([
            ("experiment".to_string(), experiment.to_json()),
            ("seed".to_string(), seed.0.to_json()),
            ("config".to_string(), Json::Obj(config)),
            (
                "points".to_string(),
                Json::arr(self.results.iter().map(Measurement::to_json)),
            ),
        ])
    }

    /// Write [`Self::to_json`] to `BENCH_<name>.json` in the current
    /// directory (deterministic, newline-terminated). Returns the path.
    pub fn write_json(
        &self,
        name: &str,
        experiment: &str,
        seed: Seed,
        extra: Json,
    ) -> std::io::Result<std::path::PathBuf> {
        let path = std::path::PathBuf::from(format!("BENCH_{name}.json"));
        std::fs::write(
            &path,
            format!("{}\n", self.to_json(experiment, seed, extra)),
        )?;
        Ok(path)
    }

    /// Print a closing summary line. Call at the end of `main`.
    pub fn finish(&self) {
        println!("\n{} benchmarks measured.", self.results.len());
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct Group<'h> {
    harness: &'h mut Harness,
    name: String,
    throughput_bytes: Option<u64>,
}

impl Group<'_> {
    /// Declare how many bytes one iteration processes, enabling the
    /// throughput column.
    pub fn throughput_bytes(&mut self, bytes: u64) -> &mut Self {
        self.throughput_bytes = Some(bytes);
        self
    }

    /// Measure `f`, printing one result line. Skipped (silently) if a CLI
    /// filter was given and the id doesn't contain it.
    pub fn bench<R>(&mut self, id: &str, mut f: impl FnMut() -> R) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.harness.filter {
            if !full_id.contains(filter.as_str()) {
                return self;
            }
        }
        let cfg = self.harness.config;

        // Warmup, and discover a batch size that runs ≳1/10 of a sample
        // window so Instant overhead stays negligible.
        let mut batch: u64 = 1;
        let warmup_end = Instant::now() + cfg.warmup;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            let sample_window = cfg.measurement / cfg.samples;
            if elapsed * 10 >= sample_window && Instant::now() >= warmup_end {
                break;
            }
            if elapsed * 10 < sample_window {
                batch = batch.saturating_mul(2);
            }
        }

        // Timed samples.
        let mut sample_ns = Vec::with_capacity(cfg.samples as usize);
        for _ in 0..cfg.samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            sample_ns.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        self.record(id, &sample_ns);
        self
    }

    /// Ingest externally-timed per-iteration samples (ns each) through the
    /// same statistics pipeline [`Group::bench`] uses. For benchmarks that
    /// must own their sampling schedule — e.g. interleaving the arms of a
    /// comparison sample-by-sample so clock-frequency drift shifts all of
    /// them together instead of whichever arm ran last.
    pub fn record(&mut self, id: &str, sample_ns: &[f64]) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.harness.filter {
            if !full_id.contains(filter.as_str()) {
                return self;
            }
        }
        let m = measurement_from_samples(full_id, sample_ns, self.throughput_bytes);
        print_measurement(&m);
        self.harness.results.push(m);
        self
    }

    /// [`Group::record`] with an explicit per-iteration byte count. Batch
    /// cells (one iteration processes several messages) override the
    /// group-level [`Group::throughput_bytes`] here so their
    /// `bytes_per_iter` / `bytes_per_sec` report the true total and stay
    /// comparable with single-message cells.
    pub fn record_with_bytes(
        &mut self,
        id: &str,
        sample_ns: &[f64],
        bytes_per_iter: u64,
    ) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.harness.filter {
            if !full_id.contains(filter.as_str()) {
                return self;
            }
        }
        let m = measurement_from_samples(full_id, sample_ns, Some(bytes_per_iter));
        print_measurement(&m);
        self.harness.results.push(m);
        self
    }

    /// End the group (marker for readability; groups also end on drop).
    pub fn finish(self) {}
}

/// Summary statistics over raw per-iteration samples: Tukey-fence outlier
/// rejection, mean/stddev over survivors, deterministic 95% bootstrap CI.
fn measurement_from_samples(
    id: String,
    sample_ns: &[f64],
    throughput_bytes: Option<u64>,
) -> Measurement {
    let (kept, outliers_rejected) = reject_outliers(sample_ns);
    let n = kept.len() as f64;
    let mean = kept.iter().sum::<f64>() / n;
    let var = kept.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    // Fixed seed: the interval is a property of the samples, and two
    // reports over the same samples must agree.
    let mut rng = Rng::from_seed(Seed(0xB007_57A9));
    let (ci95_lo_ns, ci95_hi_ns) = bootstrap_ci95(&kept, &mut rng);
    Measurement {
        id,
        mean_ns: mean,
        stddev_ns: var.sqrt(),
        min_ns: sample_ns.iter().cloned().fold(f64::INFINITY, f64::min),
        ci95_lo_ns,
        ci95_hi_ns,
        outliers_rejected,
        throughput_bytes,
    }
}

fn print_measurement(m: &Measurement) {
    let time = format_ns(m.mean_ns);
    let spread = format_ns(m.stddev_ns);
    match m.bytes_per_sec() {
        Some(bps) => println!(
            "{:<44} {:>12}/iter (± {:>9})  {:>10}/s",
            m.id,
            time,
            spread,
            format_bytes(bps)
        ),
        None => println!("{:<44} {:>12}/iter (± {:>9})", m.id, time, spread),
    }
}

/// Human-readable nanosecond quantity.
pub fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Human-readable byte quantity.
pub fn format_bytes(b: f64) -> String {
    if b < 1e3 {
        format!("{b:.0} B")
    } else if b < 1e6 {
        format!("{:.1} KB", b / 1e3)
    } else if b < 1e9 {
        format!("{:.1} MB", b / 1e6)
    } else {
        format!("{:.2} GB", b / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        BenchConfig {
            warmup: Duration::from_millis(1),
            measurement: Duration::from_millis(10),
            samples: 3,
        }
    }

    #[test]
    fn measures_something_sane() {
        let mut h = Harness {
            config: tiny(),
            filter: None,
            results: Vec::new(),
        };
        let data = vec![1u64; 1024];
        h.group("sum")
            .throughput_bytes(8 * 1024)
            .bench("u64x1024", || data.iter().sum::<u64>());
        assert_eq!(h.results().len(), 1);
        let m = &h.results()[0];
        assert_eq!(m.id, "sum/u64x1024");
        assert!(m.mean_ns > 0.0);
        assert!(m.min_ns <= m.mean_ns);
        let bps = m.bytes_per_sec().expect("throughput declared");
        // Summing 8 KiB must beat 8 MB/s on anything that can run tests.
        assert!(bps > 8e6, "{bps} B/s");
    }

    #[test]
    fn record_runs_the_same_statistics_pipeline_as_bench() {
        let mut h = Harness::new(tiny());
        let samples = [10.0, 11.0, 12.0, 13.0, 500.0];
        h.group("g").throughput_bytes(100).record("r", &samples);
        let m = &h.results()[0];
        assert_eq!(m.id, "g/r");
        assert_eq!(m.outliers_rejected, 1, "the 500 ns spike is fenced out");
        assert_eq!(m.min_ns, 10.0);
        assert!((m.mean_ns - 11.5).abs() < 1e-9, "mean over survivors");
        assert_eq!(m.throughput_bytes, Some(100));
    }

    #[test]
    fn record_with_bytes_overrides_the_group_throughput() {
        let mut h = Harness::new(tiny());
        h.group("g")
            .throughput_bytes(100)
            .record("single", &[10.0, 11.0, 12.0])
            .record_with_bytes("batch4", &[40.0, 41.0, 42.0], 400);
        assert_eq!(h.results()[0].throughput_bytes, Some(100));
        assert_eq!(h.results()[1].throughput_bytes, Some(400));
        // A batch cell with 4× the bytes at 4× the time reports the same
        // bytes/s — the comparability the override exists for.
        let a = h.results()[0].bytes_per_sec().unwrap();
        let b = h.results()[1].bytes_per_sec().unwrap();
        assert!((a / b - 1.0).abs() < 0.15, "{a} vs {b}");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut h = Harness {
            config: tiny(),
            filter: Some("match-me".into()),
            results: Vec::new(),
        };
        h.group("g")
            .bench("other", || 1)
            .bench("match-me-too", || 2);
        assert_eq!(h.results().len(), 1);
        assert_eq!(h.results()[0].id, "g/match-me-too");
    }

    #[test]
    fn quantiles_interpolate_linearly() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&sorted, 0.0), 1.0);
        assert_eq!(quantile(&sorted, 1.0), 4.0);
        assert_eq!(quantile(&sorted, 0.5), 2.5);
        assert_eq!(quantile(&sorted, 0.25), 1.75);
    }

    #[test]
    fn tukey_fences_reject_the_spike_only() {
        let mut samples = vec![100.0; 19];
        samples.push(10_000.0); // scheduler preemption
        let (kept, rejected) = reject_outliers(&samples);
        assert_eq!(rejected, 1);
        assert_eq!(kept.len(), 19);
        assert!(kept.iter().all(|&s| s == 100.0));

        // Tight clusters lose nothing.
        let clean: Vec<f64> = (0..20).map(|i| 100.0 + i as f64).collect();
        let (kept, rejected) = reject_outliers(&clean);
        assert_eq!((kept.len(), rejected), (20, 0));
    }

    #[test]
    fn bootstrap_ci_brackets_the_mean_and_is_deterministic() {
        let samples: Vec<f64> = (0..20).map(|i| 90.0 + i as f64).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut rng = Rng::from_seed(Seed(7));
        let (lo, hi) = bootstrap_ci95(&samples, &mut rng);
        assert!(lo <= mean && mean <= hi, "{lo} <= {mean} <= {hi}");
        assert!(lo >= 90.0 && hi <= 109.0, "inside the sample range");
        let mut rng2 = Rng::from_seed(Seed(7));
        assert_eq!(bootstrap_ci95(&samples, &mut rng2), (lo, hi));
    }

    #[test]
    fn measurement_stats_are_consistent() {
        let mut h = Harness::new(tiny());
        h.group("g").bench("work", || std::hint::black_box(1 + 1));
        let m = &h.results()[0];
        assert!(m.ci95_lo_ns <= m.mean_ns && m.mean_ns <= m.ci95_hi_ns);
        assert!(m.min_ns <= m.mean_ns);
        assert!(m.outliers_rejected < tiny().samples);
    }

    #[test]
    fn json_document_has_the_standard_shape() {
        let mut h = Harness::new(tiny());
        h.group("g")
            .throughput_bytes(64)
            .bench("a", || 1)
            .bench("b", || 2);
        let doc = h.to_json("unit", Seed(9), Json::obj([("extra", 5u64.to_json())]));
        assert_eq!(doc.get("experiment").unwrap().as_str(), Some("unit"));
        assert_eq!(doc.get("seed").unwrap().as_u64(), Some(9));
        let cfg = doc.get("config").unwrap();
        assert_eq!(cfg.get("samples").unwrap().as_u64(), Some(3));
        assert_eq!(cfg.get("extra").unwrap().as_u64(), Some(5));
        let points = doc.get("points").unwrap().as_arr().unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].get("id").unwrap().as_str(), Some("g/a"));
        assert_eq!(points[0].get("bytes_per_iter").unwrap().as_u64(), Some(64));
        assert!(points[0].get("ci95_lo_ns").is_some());
        // The document must survive the jsonck round-trip rule.
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap().to_string(), text);
    }

    #[test]
    fn formatting() {
        assert_eq!(format_ns(12.34), "12.3 ns");
        assert_eq!(format_ns(12_340.0), "12.34 µs");
        assert_eq!(format_ns(12_340_000.0), "12.34 ms");
        assert_eq!(format_bytes(512.0), "512 B");
        assert_eq!(format_bytes(2.5e9), "2.50 GB");
    }
}
