//! Micro-benchmark harness for `harness = false` bench targets.
//!
//! Replaces the criterion dependency with the subset the workspace's
//! benches actually use: named groups, per-benchmark warmup, adaptive
//! batch sizing, mean/stddev over timed samples, and optional bytes/s
//! throughput reporting. Results print as aligned plain text; trends
//! matter here, not microsecond-perfect confidence intervals.

use std::time::{Duration, Instant};

/// Sampling parameters. `quick()` keeps smoke runs fast; defaults mirror
/// the criterion settings the benches used (20 samples, ~2 s measurement,
/// 500 ms warmup).
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    pub warmup: Duration,
    pub measurement: Duration,
    pub samples: u32,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            warmup: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            samples: 20,
        }
    }
}

impl BenchConfig {
    /// Reduced sampling for smoke tests (`--quick`).
    pub fn quick() -> Self {
        BenchConfig {
            warmup: Duration::from_millis(50),
            measurement: Duration::from_millis(200),
            samples: 5,
        }
    }
}

/// One benchmark's measurements.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id, `group/name`.
    pub id: String,
    /// Mean time per iteration, ns.
    pub mean_ns: f64,
    /// Standard deviation across samples, ns.
    pub stddev_ns: f64,
    /// Fastest sample, ns.
    pub min_ns: f64,
    /// Bytes processed per iteration, if declared.
    pub throughput_bytes: Option<u64>,
}

impl Measurement {
    /// Bytes/second implied by the mean time, if throughput was declared.
    pub fn bytes_per_sec(&self) -> Option<f64> {
        self.throughput_bytes
            .map(|b| b as f64 / (self.mean_ns / 1e9))
    }
}

/// The top-level harness a bench target's `main` drives.
pub struct Harness {
    config: BenchConfig,
    filter: Option<String>,
    results: Vec<Measurement>,
}

impl Harness {
    /// Build from CLI arguments: `--quick` shrinks sampling, the first
    /// non-flag argument becomes a substring filter on benchmark ids
    /// (criterion's convention). Harness flags cargo may pass
    /// (`--bench`, `--test`) are ignored.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let quick = args.iter().any(|a| a == "--quick");
        let filter = args.iter().find(|a| !a.starts_with('-')).cloned();
        Harness {
            config: if quick {
                BenchConfig::quick()
            } else {
                BenchConfig::default()
            },
            filter,
            results: Vec::new(),
        }
    }

    /// Override sampling (tests use this to stay fast).
    pub fn with_config(mut self, config: BenchConfig) -> Self {
        self.config = config;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            throughput_bytes: None,
        }
    }

    /// All measurements taken so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Print a closing summary line. Call at the end of `main`.
    pub fn finish(&self) {
        println!("\n{} benchmarks measured.", self.results.len());
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct Group<'h> {
    harness: &'h mut Harness,
    name: String,
    throughput_bytes: Option<u64>,
}

impl Group<'_> {
    /// Declare how many bytes one iteration processes, enabling the
    /// throughput column.
    pub fn throughput_bytes(&mut self, bytes: u64) -> &mut Self {
        self.throughput_bytes = Some(bytes);
        self
    }

    /// Measure `f`, printing one result line. Skipped (silently) if a CLI
    /// filter was given and the id doesn't contain it.
    pub fn bench<R>(&mut self, id: &str, mut f: impl FnMut() -> R) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.harness.filter {
            if !full_id.contains(filter.as_str()) {
                return self;
            }
        }
        let cfg = self.harness.config;

        // Warmup, and discover a batch size that runs ≳1/10 of a sample
        // window so Instant overhead stays negligible.
        let mut batch: u64 = 1;
        let warmup_end = Instant::now() + cfg.warmup;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            let sample_window = cfg.measurement / cfg.samples;
            if elapsed * 10 >= sample_window && Instant::now() >= warmup_end {
                break;
            }
            if elapsed * 10 < sample_window {
                batch = batch.saturating_mul(2);
            }
        }

        // Timed samples.
        let mut sample_ns = Vec::with_capacity(cfg.samples as usize);
        for _ in 0..cfg.samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            sample_ns.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        let n = sample_ns.len() as f64;
        let mean = sample_ns.iter().sum::<f64>() / n;
        let var = sample_ns
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / n;
        let m = Measurement {
            id: full_id,
            mean_ns: mean,
            stddev_ns: var.sqrt(),
            min_ns: sample_ns.iter().cloned().fold(f64::INFINITY, f64::min),
            throughput_bytes: self.throughput_bytes,
        };
        print_measurement(&m);
        self.harness.results.push(m);
        self
    }

    /// End the group (marker for readability; groups also end on drop).
    pub fn finish(self) {}
}

fn print_measurement(m: &Measurement) {
    let time = format_ns(m.mean_ns);
    let spread = format_ns(m.stddev_ns);
    match m.bytes_per_sec() {
        Some(bps) => println!(
            "{:<44} {:>12}/iter (± {:>9})  {:>10}/s",
            m.id,
            time,
            spread,
            format_bytes(bps)
        ),
        None => println!("{:<44} {:>12}/iter (± {:>9})", m.id, time, spread),
    }
}

/// Human-readable nanosecond quantity.
pub fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Human-readable byte quantity.
pub fn format_bytes(b: f64) -> String {
    if b < 1e3 {
        format!("{b:.0} B")
    } else if b < 1e6 {
        format!("{:.1} KB", b / 1e3)
    } else if b < 1e9 {
        format!("{:.1} MB", b / 1e6)
    } else {
        format!("{:.2} GB", b / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        BenchConfig {
            warmup: Duration::from_millis(1),
            measurement: Duration::from_millis(10),
            samples: 3,
        }
    }

    #[test]
    fn measures_something_sane() {
        let mut h = Harness {
            config: tiny(),
            filter: None,
            results: Vec::new(),
        };
        let data = vec![1u64; 1024];
        h.group("sum")
            .throughput_bytes(8 * 1024)
            .bench("u64x1024", || data.iter().sum::<u64>());
        assert_eq!(h.results().len(), 1);
        let m = &h.results()[0];
        assert_eq!(m.id, "sum/u64x1024");
        assert!(m.mean_ns > 0.0);
        assert!(m.min_ns <= m.mean_ns);
        let bps = m.bytes_per_sec().expect("throughput declared");
        // Summing 8 KiB must beat 8 MB/s on anything that can run tests.
        assert!(bps > 8e6, "{bps} B/s");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut h = Harness {
            config: tiny(),
            filter: Some("match-me".into()),
            results: Vec::new(),
        };
        h.group("g")
            .bench("other", || 1)
            .bench("match-me-too", || 2);
        assert_eq!(h.results().len(), 1);
        assert_eq!(h.results()[0].id, "g/match-me-too");
    }

    #[test]
    fn formatting() {
        assert_eq!(format_ns(12.34), "12.3 ns");
        assert_eq!(format_ns(12_340.0), "12.34 µs");
        assert_eq!(format_ns(12_340_000.0), "12.34 ms");
        assert_eq!(format_bytes(512.0), "512 B");
        assert_eq!(format_bytes(2.5e9), "2.50 GB");
    }
}
