//! # ib-runtime
//!
//! The workspace's from-scratch runtime substrate. DESIGN.md builds every
//! cryptographic primitive from first principles; this crate extends that
//! policy to the runtime services the reproduction needs, so the whole
//! workspace builds and tests **offline** with zero crates.io dependencies:
//!
//! * [`rng`] — deterministic pseudo-randomness: SplitMix64 seeding into a
//!   xoshiro256\*\* core, with uniform ranges, shuffling, Bernoulli,
//!   exponential and Poisson sampling, and the [`rng::Seed`] type every
//!   experiment threads through so any reported point is reproducible from
//!   its printed seed.
//! * [`par`] — scoped parallel sweeps over `std::thread::scope`
//!   (embarrassingly parallel simulator instances, MAC lanes).
//! * [`json`] — a minimal JSON value, writer and parser for result
//!   emission and config round-trips.
//! * [`bench`] — a micro-benchmark harness (warmup, adaptive iteration
//!   count, mean/stddev/throughput reporting) for `harness = false` bench
//!   targets.
//! * [`check`] — a seeded property-test driver with failure-case
//!   shrinking.

pub mod bench;
pub mod check;
pub mod json;
pub mod par;
pub mod rng;

pub use json::{Json, ToJson};
pub use rng::{Rng, Seed};
