//! Deterministic pseudo-randomness: SplitMix64 seeding + xoshiro256\*\*.
//!
//! The simulator's methodology (§3.1: random partition grouping, random
//! attacker placement) rests on runs being exactly reproducible from a
//! printed seed. Both generators here are bit-exact transcriptions of the
//! published reference algorithms (Steele et al. for SplitMix64, Blackman
//! & Vigna for xoshiro256\*\*) and are validated against reference output
//! vectors in the tests below.

use std::fmt;

/// The SplitMix64 additive constant (golden-ratio increment).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Advance a SplitMix64 state and return the next output.
///
/// Used to expand a single `u64` seed into the 256-bit xoshiro state and
/// to derive independent seed streams.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A simulation seed: the single value from which an entire run (or sweep
/// shard) is reproducible. Printed in every experiment binary's header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Seed(pub u64);

impl Seed {
    /// Wrap a raw seed value.
    pub const fn new(v: u64) -> Self {
        Seed(v)
    }

    /// Derive the seed of an independent stream `i` (sweep shard, repeat
    /// index). Streams are decorrelated by a SplitMix64 mix rather than a
    /// small additive offset, so nearby indices share no state structure.
    pub fn stream(self, i: u64) -> Seed {
        let mut s = self.0 ^ i.wrapping_mul(GOLDEN_GAMMA);
        Seed(splitmix64(&mut s))
    }

    /// Build the run's random generator.
    pub fn rng(self) -> Rng {
        Rng::from_seed(self)
    }
}

impl fmt::Display for Seed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:016X}", self.0)
    }
}

impl From<u64> for Seed {
    fn from(v: u64) -> Self {
        Seed(v)
    }
}

impl std::ops::BitXor<u64> for Seed {
    type Output = Seed;
    fn bitxor(self, rhs: u64) -> Seed {
        Seed(self.0 ^ rhs)
    }
}

impl std::ops::BitXorAssign<u64> for Seed {
    fn bitxor_assign(&mut self, rhs: u64) {
        self.0 ^= rhs;
    }
}

/// xoshiro256\*\* — the workspace's only general-purpose PRNG. 256 bits of
/// state, period 2²⁵⁶ − 1, passes BigCrush; not cryptographic (key
/// material comes from `ib-crypto`, never from here).
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed via SplitMix64 expansion, per the xoshiro authors'
    /// recommendation (never hand the raw seed to the state directly).
    pub fn from_seed(seed: Seed) -> Self {
        let mut sm = seed.0;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Construct from a raw 256-bit state (golden-vector tests only).
    /// The all-zero state is the one fixed point and is rejected.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
        Rng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in [0, 1): the top 53 bits scaled by 2⁻⁵³.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a half-open range. Panics on an empty range.
    pub fn gen_range<T: UniformSample>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to [0, 1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }

    /// Exponential sample with the given mean (inverse-CDF on a uniform
    /// bounded away from 0, so the result is always finite).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = self.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// Poisson sample with the given rate (Knuth's multiplication method;
    /// large rates fall back to chunked sampling so cost stays O(λ) with a
    /// bounded per-step product underflow risk).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "poisson rate must be non-negative");
        // Split large rates: Poisson(a + b) = Poisson(a) + Poisson(b).
        // exp(-500) is still comfortably inside f64's subnormal range.
        let mut remaining = lambda;
        let mut total = 0u64;
        while remaining > 0.0 {
            let step = remaining.min(500.0);
            remaining -= step;
            let l = (-step).exp();
            let mut k = 0u64;
            let mut p = 1.0f64;
            loop {
                p *= self.next_f64();
                if p <= l {
                    break;
                }
                k += 1;
            }
            total += k;
        }
        total
    }

    /// Fill a byte slice from successive outputs.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types [`Rng::gen_range`] can sample uniformly.
pub trait UniformSample: Copy {
    fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self;
}

/// Uniform integer in [0, span) via 128-bit multiply-shift (Lemire's
/// reduction without the rejection step; the bias is ≤ span/2⁶⁴, far below
/// anything a simulation statistic can resolve).
#[inline]
fn mul_shift(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                lo + mul_shift(rng.next_u64(), span) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

impl UniformSample for f64 {
    fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published SplitMix64 reference outputs for seed 0 (the vector from
    /// the algorithm's reference implementation, reproduced in many
    /// engines' test suites).
    #[test]
    fn splitmix64_golden_seed0() {
        let mut s = 0u64;
        let expected = [
            0xE220_A839_7B1D_CDAF,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
            0x1B39_896A_51A8_749B,
            0x53CB_9F0C_747E_A2EA,
            0x2C82_9ABE_1F45_32E1,
            0xC584_133A_C916_AB3C,
        ];
        for e in expected {
            assert_eq!(splitmix64(&mut s), e);
        }
    }

    /// xoshiro256** reference outputs from state [1, 2, 3, 4] — the vector
    /// shipped with the reference implementation's test suite.
    #[test]
    fn xoshiro_golden_state1234() {
        let mut rng = Rng::from_state([1, 2, 3, 4]);
        let expected: [u64; 8] = [
            11520,
            0,
            1509978240,
            1215971899390074240,
            1216172134540287360,
            607988272756665600,
            16172922978634559625,
            8476171486693032832,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    /// The composed pipeline: SplitMix64(0) expands the state, xoshiro
    /// runs on it. Pins the exact seeding convention.
    #[test]
    fn seeded_golden_seed0() {
        let mut rng = Seed(0).rng();
        let expected: [u64; 4] = [
            0x99EC_5F36_CB75_F2B4,
            0xBF6E_1F78_4956_452A,
            0x1A5F_849D_4933_E6E0,
            0x6AA5_94F1_262D_2D2C,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = (0..16)
            .map({
                let mut r = Seed(7).rng();
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..16)
            .map({
                let mut r = Seed(7).rng();
                move |_| r.next_u64()
            })
            .collect();
        let c: Vec<u64> = (0..16)
            .map({
                let mut r = Seed(8).rng();
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn streams_are_decorrelated() {
        let base = Seed(0x1BAD_5EED);
        let s0 = base.stream(0);
        let s1 = base.stream(1);
        assert_ne!(s0, s1);
        assert_ne!(s0, base);
        // Deterministic derivation.
        assert_eq!(base.stream(1), base.stream(1));
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = Seed(42).rng();
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "1000 draws must hit all 10 buckets"
        );
        for _ in 0..1000 {
            let v = rng.gen_range(100u64..200);
            assert!((100..200).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        Seed(0).rng().gen_range(5u64..5);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Seed(9).rng();
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "30% ± 3%: {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Seed(3).rng();
        let mut v: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        // With 64 elements, identity survival is a ~1/64! event.
        assert_ne!(v, sorted);
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = Seed(7).rng();
        let mean = 10_000.0;
        let n = 50_000;
        let total: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let sample_mean = total / n as f64;
        assert!(
            (sample_mean - mean).abs() / mean < 0.05,
            "sample mean {sample_mean} too far from {mean}"
        );
    }

    /// Statistical sanity for the Poisson sampler at a fixed seed: mean
    /// and variance both ≈ λ.
    #[test]
    fn poisson_mean_and_variance() {
        let mut rng = Seed(11).rng();
        let lambda = 12.0;
        let n = 20_000usize;
        let samples: Vec<u64> = (0..n).map(|_| rng.poisson(lambda)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        let var = samples
            .iter()
            .map(|&x| {
                let d = x as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - lambda).abs() / lambda < 0.05,
            "mean {mean} vs λ {lambda}"
        );
        assert!(
            (var - lambda).abs() / lambda < 0.10,
            "var {var} vs λ {lambda}"
        );
    }

    #[test]
    fn poisson_large_rate_splits() {
        let mut rng = Seed(13).rng();
        let lambda = 2_000.0;
        let n = 500usize;
        let mean = (0..n).map(|_| rng.poisson(lambda)).sum::<u64>() as f64 / n as f64;
        assert!(
            (mean - lambda).abs() / lambda < 0.05,
            "mean {mean} vs λ {lambda}"
        );
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn fill_bytes_deterministic() {
        let mut a = [0u8; 19];
        let mut b = [0u8; 19];
        Seed(5).rng().fill_bytes(&mut a);
        Seed(5).rng().fill_bytes(&mut b);
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x != 0));
    }

    #[test]
    fn seed_display_and_ops() {
        let mut s = Seed(0x1BAD_5EED);
        assert_eq!(s.to_string(), "0x000000001BAD5EED");
        s ^= 0xFFFF;
        assert_eq!(s, Seed(0x1BAD_5EED ^ 0xFFFF));
        assert_eq!(Seed::from(5u64), Seed(5));
    }
}
