//! A seeded property-test driver with failure-case shrinking and a
//! persistent failure corpus.
//!
//! Replaces the proptest dependency for the workspace's invariant tests:
//! cases are generated from a deterministic [`Gen`] (so failures
//! reproduce from the printed seed), properties are ordinary closures
//! that panic on violation, and a failing case is greedily shrunk through
//! caller-supplied candidate reductions before being reported.
//!
//! When a property fails, [`run`] records the `(seed, case index)` pair
//! under the workspace's `tests/corpus/` directory and **replays every
//! stored pair first** on subsequent runs — a once-seen counterexample is
//! re-checked forever, before any random generation. Set
//! `CHECK_CORPUS_DIR` to relocate the corpus, or to the empty string to
//! disable persistence.
//!
//! ```
//! use ib_runtime::check;
//!
//! check::run(
//!     "addition commutes",
//!     64,
//!     |g| (g.u64(), g.u64()),
//!     |&(a, b)| check::shrink_pair(a, b),
//!     |&(a, b)| assert_eq!(a.wrapping_add(b), b.wrapping_add(a)),
//! );
//! ```

use crate::rng::{Rng, Seed};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Deterministic case generator handed to the generation closure.
pub struct Gen {
    rng: Rng,
}

impl Gen {
    /// Build from a seed (the driver does this; tests rarely need to).
    pub fn new(seed: Seed) -> Self {
        Gen { rng: seed.rng() }
    }

    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    pub fn u64_in(&mut self, range: std::ops::Range<u64>) -> u64 {
        self.rng.gen_range(range)
    }

    pub fn u32_in(&mut self, range: std::ops::Range<u32>) -> u32 {
        self.rng.gen_range(range)
    }

    pub fn u16_in(&mut self, range: std::ops::Range<u16>) -> u16 {
        self.rng.gen_range(range)
    }

    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        self.rng.gen_range(range)
    }

    pub fn u8(&mut self) -> u8 {
        (self.rng.next_u64() >> 56) as u8
    }

    pub fn f64(&mut self) -> f64 {
        self.rng.next_f64()
    }

    pub fn bool(&mut self) -> bool {
        self.rng.gen_bool(0.5)
    }

    /// A byte vector whose length is drawn from `len`.
    pub fn bytes(&mut self, len: std::ops::Range<usize>) -> Vec<u8> {
        let n = self.rng.gen_range(len);
        let mut v = vec![0u8; n];
        self.rng.fill_bytes(&mut v);
        v
    }

    /// An index valid for a collection of length `len` (panics on 0).
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "index into empty collection");
        self.rng.gen_range(0..len)
    }

    /// A uniformly chosen element of the slice.
    pub fn choose<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        &options[self.index(options.len())]
    }
}

/// Run `cases` random checks of `prop` over values from `gen`.
///
/// * `shrink` proposes simpler variants of a case ([`no_shrink`] opts
///   out); on failure the driver greedily descends through failing
///   candidates (bounded, so cyclic shrinkers still terminate).
/// * `prop` signals violation by panicking (use the std `assert!` family).
///
/// The base seed comes from `CHECK_SEED` (decimal or 0x-hex) when set,
/// else a fixed default; the failure report prints seed and case index so
/// any failure replays exactly. Failures are also appended to the
/// persistent corpus (see the module docs) and stored corpus entries are
/// replayed before the random phase.
pub fn run<T, G, S, P>(name: &str, cases: u32, gen: G, shrink: S, prop: P)
where
    T: std::fmt::Debug,
    G: FnMut(&mut Gen) -> T,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T),
{
    run_with_corpus(
        name,
        cases,
        default_corpus_dir().as_deref(),
        gen,
        shrink,
        prop,
    )
}

/// [`run`] with an explicit corpus directory (`None` disables
/// persistence — used by the driver's own failure-path tests, and by
/// anyone who wants purely ephemeral checks).
pub fn run_with_corpus<T, G, S, P>(
    name: &str,
    cases: u32,
    corpus: Option<&Path>,
    mut gen: G,
    shrink: S,
    prop: P,
) where
    T: std::fmt::Debug,
    G: FnMut(&mut Gen) -> T,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T),
{
    let seed = env_seed();
    let corpus_file = corpus.map(|dir| dir.join(format!("{}.seeds", sanitize_name(name))));

    // Replay phase: every counterexample this property has ever produced
    // is regenerated from its recorded (seed, case index) and re-checked
    // before any random exploration.
    if let Some(file) = &corpus_file {
        for (stored_seed, case_index) in read_corpus(file) {
            let mut g = Gen::new(stored_seed.stream(case_index));
            let case = gen(&mut g);
            if let Err(message) = check_one(&prop, &case) {
                let (minimal, min_message, steps) = shrink_failure(&shrink, &prop, case, message);
                panic!(
                    "property '{name}' failed on stored corpus case (seed {stored_seed}, \
                     case {case_index}, {steps} shrink steps)\n  corpus: {}\n  \
                     minimal case: {minimal:?}\n  failure: {min_message}",
                    file.display(),
                );
            }
        }
    }

    // Random phase.
    for case_index in 0..cases {
        let mut g = Gen::new(seed.stream(case_index as u64));
        let case = gen(&mut g);
        if let Err(message) = check_one(&prop, &case) {
            let recorded = corpus_file
                .as_ref()
                .filter(|file| record_failure(file, seed, case_index as u64))
                .map(|file| format!("\n  recorded: {}", file.display()))
                .unwrap_or_default();
            let (minimal, min_message, steps) = shrink_failure(&shrink, &prop, case, message);
            panic!(
                "property '{name}' failed (seed {seed}, case {case_index}/{cases}, \
                 {steps} shrink steps)\n  minimal case: {minimal:?}\n  failure: {min_message}\n  \
                 replay: CHECK_SEED={seed} cargo test{recorded}",
            );
        }
    }
}

/// Corpus file stem: the property name with every non-alphanumeric run
/// collapsed to a single `-`.
fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('-') {
            out.push('-');
        }
    }
    out.trim_matches('-').to_string()
}

/// Where failures persist: `CHECK_CORPUS_DIR` when set (empty disables),
/// else `tests/corpus` under the nearest ancestor of the working
/// directory that has a `tests/` directory (the workspace root, for every
/// crate in this repo).
fn default_corpus_dir() -> Option<PathBuf> {
    if let Ok(v) = std::env::var("CHECK_CORPUS_DIR") {
        let v = v.trim();
        if v.is_empty() {
            return None;
        }
        return Some(PathBuf::from(v));
    }
    let mut dir = std::env::current_dir().ok()?;
    for _ in 0..5 {
        if dir.join("tests").is_dir() {
            return Some(dir.join("tests").join("corpus"));
        }
        if !dir.pop() {
            break;
        }
    }
    None
}

/// Parse stored `0x<seed-hex> <case-index>` lines; malformed lines and
/// `#` comments are skipped so a hand-edited file never breaks the run.
fn read_corpus(file: &Path) -> Vec<(Seed, u64)> {
    let Ok(text) = std::fs::read_to_string(file) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                return None;
            }
            let (seed_part, index_part) = line.split_once(' ')?;
            let seed = u64::from_str_radix(seed_part.strip_prefix("0x")?, 16).ok()?;
            let index = index_part.trim().parse().ok()?;
            Some((Seed(seed), index))
        })
        .collect()
}

/// Append a failing `(seed, case index)` to the corpus, deduplicated.
/// Returns whether the entry is durably in the file (best-effort: a
/// read-only checkout must not turn a test failure into an IO panic).
fn record_failure(file: &Path, seed: Seed, case_index: u64) -> bool {
    let entry = format!("0x{:016X} {case_index}", seed.0);
    if read_corpus(file)
        .iter()
        .any(|&(s, i)| s == seed && i == case_index)
    {
        return true;
    }
    if let Some(parent) = file.parent() {
        if std::fs::create_dir_all(parent).is_err() {
            return false;
        }
    }
    use std::io::Write;
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(file)
        .and_then(|mut f| writeln!(f, "{entry}"))
        .is_ok()
}

/// A `shrink` argument for cases with nothing useful to reduce.
pub fn no_shrink<T>(_: &T) -> Vec<T> {
    Vec::new()
}

/// Candidate reductions of an unsigned integer: toward zero by jumps,
/// then by one.
pub fn shrink_uint(v: u64) -> Vec<u64> {
    if v == 0 {
        return Vec::new();
    }
    let mut out = vec![0, v / 2];
    if v > 1 {
        out.push(v - 1);
    }
    out.dedup();
    out
}

/// Candidate reductions of a byte vector: drop halves, halve the length,
/// zero bytes.
pub fn shrink_bytes(v: &[u8]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let n = v.len();
    if n == 0 {
        return out;
    }
    out.push(v[..n / 2].to_vec());
    out.push(v[n / 2..].to_vec());
    if n > 1 {
        out.push(v[..n - 1].to_vec());
    }
    if let Some(i) = v.iter().position(|&b| b != 0) {
        let mut zeroed = v.to_vec();
        zeroed[i] = 0;
        out.push(zeroed);
    }
    out
}

/// Shrink a pair by shrinking each side independently (both `u64`).
pub fn shrink_pair(a: u64, b: u64) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = shrink_uint(a).into_iter().map(|x| (x, b)).collect();
    out.extend(shrink_uint(b).into_iter().map(|y| (a, y)));
    out
}

fn env_seed() -> Seed {
    match std::env::var("CHECK_SEED") {
        Ok(v) => {
            let v = v.trim();
            let parsed = if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                u64::from_str_radix(hex, 16).ok()
            } else {
                v.parse().ok()
            };
            Seed(parsed.unwrap_or_else(|| panic!("CHECK_SEED {v:?} is not a u64")))
        }
        Err(_) => Seed(0xC8EC_C0DE),
    }
}

/// Run the property on one case, capturing panics as failure messages.
fn check_one<T>(prop: impl Fn(&T), case: &T) -> Result<(), String> {
    let result = catch_unwind(AssertUnwindSafe(|| prop(case)));
    match result {
        Ok(()) => Ok(()),
        Err(payload) => Err(panic_message(payload)),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Greedy shrink: repeatedly move to the first candidate that still
/// fails, up to a step bound.
fn shrink_failure<T: std::fmt::Debug>(
    shrink: impl Fn(&T) -> Vec<T>,
    prop: impl Fn(&T),
    mut case: T,
    mut message: String,
) -> (T, String, u32) {
    const MAX_STEPS: u32 = 512;
    let mut steps = 0;
    'outer: while steps < MAX_STEPS {
        for candidate in shrink(&case) {
            if let Err(m) = check_one(&prop, &candidate) {
                case = candidate;
                message = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (case, message, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_completes() {
        run(
            "xor is self-inverse",
            64,
            |g| (g.u64(), g.u64()),
            |&(a, b)| shrink_pair(a, b),
            |&(a, b)| assert_eq!(a ^ b ^ b, a),
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let draw = |i: u64| {
            let mut g = Gen::new(Seed(99).stream(i));
            (g.u64(), g.bytes(0..64), g.u16_in(5..10))
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3).0, draw(4).0);
    }

    #[test]
    fn failing_property_panics_with_context() {
        let result = catch_unwind(|| {
            run_with_corpus(
                "always fails above 10",
                64,
                None,
                |g| g.u64_in(0..1000),
                |&v| shrink_uint(v),
                |&v| assert!(v <= 10, "value {v} exceeds 10"),
            );
        });
        let msg = panic_message(result.expect_err("must fail"));
        assert!(msg.contains("always fails above 10"), "{msg}");
        assert!(msg.contains("CHECK_SEED="), "{msg}");
        // Shrinking drives the counterexample to the boundary.
        assert!(msg.contains("minimal case: 11"), "{msg}");
    }

    #[test]
    fn shrinking_minimizes_byte_vectors() {
        // Fails whenever the vector contains a nonzero byte; minimal
        // failing case is a single nonzero byte (shrunk toward [1]-like).
        let result = catch_unwind(|| {
            run_with_corpus(
                "no nonzero bytes",
                32,
                None,
                |g| g.bytes(1..128),
                |v| shrink_bytes(v),
                |v| assert!(v.iter().all(|&b| b == 0)),
            );
        });
        let msg = panic_message(result.expect_err("must fail"));
        // The minimal case printed must be short (a one-element vec).
        assert!(msg.contains("minimal case: ["), "{msg}");
        let inside = msg.split("minimal case: [").nth(1).unwrap();
        let list = inside.split(']').next().unwrap();
        assert!(list.split(',').count() <= 2, "not minimized: [{list}]");
    }

    #[test]
    fn gen_helpers_in_bounds() {
        let mut g = Gen::new(Seed(1));
        for _ in 0..200 {
            assert!(g.u16_in(3..9) >= 3 && g.u16_in(3..9) < 9);
            let v = g.bytes(4..8);
            assert!((4..8).contains(&v.len()));
            let opts = [10, 20, 30];
            assert!(opts.contains(g.choose(&opts)));
            assert!(g.index(5) < 5);
            assert!(g.f64() < 1.0);
        }
        let _ = (
            g.bool(),
            g.u8(),
            g.u32_in(0..5),
            g.usize_in(0..5),
            g.u64_in(0..5),
        );
    }

    #[test]
    fn corpus_records_replays_and_dedups_failures() {
        let dir = std::env::temp_dir().join(format!("ib-check-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // A failing run records its (seed, case index) before panicking.
        let fail_once = || {
            catch_unwind(|| {
                run_with_corpus(
                    "corpus: demo prop",
                    64,
                    Some(dir.as_path()),
                    |g| g.u64_in(0..1000),
                    |&v| shrink_uint(v),
                    |&v| assert!(v <= 10, "value {v} exceeds 10"),
                )
            })
        };
        let msg = panic_message(fail_once().expect_err("must fail"));
        assert!(msg.contains("recorded: "), "{msg}");
        let file = dir.join("corpus-demo-prop.seeds");
        let entries = read_corpus(&file);
        assert_eq!(entries.len(), 1, "one failure, one corpus line");
        let (stored_seed, stored_index) = entries[0];

        // Replay-first: a later run re-checks the stored case before any
        // random generation, failing with the corpus context...
        let msg = panic_message(fail_once().expect_err("replay must fail"));
        assert!(msg.contains("stored corpus case"), "{msg}");
        assert!(
            read_corpus(&file).len() == 1,
            "replay failures are not re-recorded"
        );

        // ...and regenerates exactly the recorded counterexample.
        let replayed = std::cell::RefCell::new(Vec::new());
        let _ = catch_unwind(AssertUnwindSafe(|| {
            run_with_corpus(
                "corpus: demo prop",
                0, // no random phase: only the corpus is exercised
                Some(dir.as_path()),
                |g| g.u64_in(0..1000),
                no_shrink,
                |&v| replayed.borrow_mut().push(v),
            )
        }));
        let expected = Gen::new(stored_seed.stream(stored_index)).u64_in(0..1000);
        assert_eq!(replayed.into_inner(), vec![expected]);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corpus_name_sanitization_and_parsing() {
        assert_eq!(sanitize_name("MAC tags verify (§6)"), "mac-tags-verify-6");
        assert_eq!(sanitize_name("---"), "");
        let dir = std::env::temp_dir().join(format!("ib-check-parse-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let file = dir.join("p.seeds");
        std::fs::write(
            &file,
            "# comment\n0x00000000000000FF 3\nnot a line\n0x10 2\n0x00000000000000FF 3\n",
        )
        .unwrap();
        assert_eq!(
            read_corpus(&file),
            vec![(Seed(0xFF), 3), (Seed(0x10), 2), (Seed(0xFF), 3)]
        );
        assert!(read_corpus(Path::new("/nonexistent/x.seeds")).is_empty());
        // Recording the same entry twice leaves a single line.
        assert!(record_failure(&file, Seed(0xFF), 3));
        assert_eq!(read_corpus(&file).len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shrink_helpers() {
        assert!(shrink_uint(0).is_empty());
        assert_eq!(shrink_uint(1), vec![0]);
        assert!(shrink_uint(100).contains(&50));
        assert!(shrink_bytes(&[]).is_empty());
        assert!(shrink_bytes(&[5, 6]).iter().any(|v| v.len() == 1));
        assert!(no_shrink(&42u64).is_empty());
    }
}
