//! Scoped parallel sweeps over `std::thread::scope`.
//!
//! Simulator instances are independent and deterministic, so sweeps are
//! embarrassingly parallel (the HPC guides' "parallelize across
//! independent work items" idiom). These helpers replace the crossbeam
//! scoped-thread dependency with the standard library's scoped threads.

/// Run `f` over every item on its own scoped thread, returning results in
/// input order. Suited to coarse work items (a full simulation run per
/// item); for fine-grained items prefer [`scope_map_bounded`].
///
/// Panics propagate: if any worker panics, the panic resurfaces here.
pub fn scope_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let mut results: Vec<Option<R>> = Vec::new();
    results.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        for (slot, item) in results.iter_mut().zip(items) {
            let f = &f;
            scope.spawn(move || {
                *slot = Some(f(item));
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("scope_map: every worker fills its slot"))
        .collect()
}

/// Like [`scope_map`], but with at most `threads` workers, each owning a
/// contiguous chunk of items — for sweeps with many more items than cores.
pub fn scope_map_bounded<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut remaining = items;
    while !remaining.is_empty() {
        let tail = remaining.split_off(chunk.min(remaining.len()));
        chunks.push(std::mem::replace(&mut remaining, tail));
    }
    let mut results: Vec<Option<R>> = Vec::new();
    results.resize_with(n, || None);
    std::thread::scope(|scope| {
        for (slots, chunk_items) in results.chunks_mut(chunk).zip(chunks) {
            let f = &f;
            scope.spawn(move || {
                for (slot, item) in slots.iter_mut().zip(chunk_items) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("scope_map_bounded: every slot filled"))
        .collect()
}

/// A sensible worker count for [`scope_map_bounded`]: the machine's
/// available parallelism, falling back to 4.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = scope_map(vec![1u64, 2, 3, 4, 5], |x| x * x);
        assert_eq!(out, vec![1, 4, 9, 16, 25]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = scope_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn threads_actually_run_concurrently() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::time::Duration;
        // Two workers that each wait for the other to have started: only
        // completes if both run at once.
        let started = AtomicUsize::new(0);
        let out = scope_map(vec![0, 1], |i| {
            started.fetch_add(1, Ordering::SeqCst);
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while started.load(Ordering::SeqCst) < 2 {
                assert!(std::time::Instant::now() < deadline, "peer never started");
                std::thread::yield_now();
            }
            i
        });
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn bounded_matches_unbounded() {
        let items: Vec<u64> = (0..100).collect();
        let seq = scope_map_bounded(items.clone(), 1, |x| x * 3);
        let par = scope_map_bounded(items.clone(), 8, |x| x * 3);
        let unb = scope_map(items, |x| x * 3);
        assert_eq!(seq, par);
        assert_eq!(par, unb);
    }

    #[test]
    fn bounded_with_more_threads_than_items() {
        let out = scope_map_bounded(vec![7u32, 8], 64, |x| x + 1);
        assert_eq!(out, vec![8, 9]);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
