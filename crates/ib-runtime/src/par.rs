//! Scoped parallel sweeps and a persistent worker pool.
//!
//! Simulator instances are independent and deterministic, so sweeps are
//! embarrassingly parallel (the HPC guides' "parallelize across
//! independent work items" idiom). These helpers replace the crossbeam
//! scoped-thread dependency with the standard library's scoped threads.
//!
//! [`WorkerPool`] spawns its threads once and runs many broadcast jobs,
//! so callers issuing frequent short parallel rounds (the parallel packet
//! engine's lookahead windows, repeated [`scope_map_dynamic`] sweeps)
//! never pay a per-call spawn. [`scope_map_dynamic`] transparently runs
//! on a process-wide pool when one is available and falls back to scoped
//! spawning otherwise, so its semantics (input order preserved, panics
//! propagate) are unchanged.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A persistent pool of parked OS threads that runs broadcast jobs: every
/// call to [`broadcast`](Self::broadcast) wakes all workers, runs the
/// closure once per worker index, and returns when the last worker
/// finishes. Spawning happens once in [`new`](Self::new), so a caller
/// issuing thousands of short rounds (conservative-lookahead windows, one
/// sweep cell per round) pays only a wake/park per round, not a spawn.
pub struct WorkerPool {
    inner: Arc<PoolInner>,
    /// Serializes broadcasts: a second caller waits (or bounces off
    /// [`try_broadcast`](Self::try_broadcast)) instead of corrupting the
    /// in-flight round's job slot.
    gate: Mutex<()>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

struct PoolInner {
    state: Mutex<PoolState>,
    start: Condvar,
    done: Condvar,
}

struct PoolState {
    job: Option<JobPtr>,
    round: u64,
    remaining: usize,
    panicked: usize,
    shutdown: bool,
}

/// A lifetime-erased pointer to the current broadcast's closure.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: workers dereference the pointer only between job publication and
// the final completion notification, and `broadcast` blocks the calling
// thread (which holds the closure) for that entire interval, so the
// referent outlives every use; `Sync` on the referent makes the shared
// cross-thread calls sound.
unsafe impl Send for JobPtr {}

thread_local! {
    /// True on pool worker threads: nested sweeps detect this and fall
    /// back to scoped spawning instead of deadlocking on the pool gate.
    static IN_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

impl WorkerPool {
    /// Spawn a pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let inner = Arc::new(PoolInner {
            state: Mutex::new(PoolState {
                job: None,
                round: 0,
                remaining: 0,
                panicked: 0,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|idx| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_main(&inner, idx))
            })
            .collect();
        WorkerPool {
            inner,
            gate: Mutex::new(()),
            handles,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Run `f(idx)` once on every worker (`idx` in `0..threads()`),
    /// blocking until all complete. Concurrent broadcasts from other
    /// threads queue behind this one. Panics if any worker's closure
    /// panicked.
    pub fn broadcast(&self, f: &(dyn Fn(usize) + Sync)) {
        let _gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        self.run_round(f);
    }

    /// [`broadcast`](Self::broadcast), but returns `false` without running
    /// anything if another broadcast is already in flight — the
    /// contention-free path [`scope_map_dynamic`] uses to decide between
    /// the pool and spawning.
    pub fn try_broadcast(&self, f: &(dyn Fn(usize) + Sync)) -> bool {
        // A propagated worker panic poisons the gate; the pool itself is
        // still healthy, so recover the guard rather than wedging every
        // future caller onto the spawn path.
        let _gate = match self.gate.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return false,
        };
        self.run_round(f);
        true
    }

    fn run_round(&self, f: &(dyn Fn(usize) + Sync)) {
        // SAFETY (lifetime erasure): see `JobPtr` — we block below until
        // every worker has finished with the pointer.
        let job = JobPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
        });
        let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        st.job = Some(job);
        st.round += 1;
        st.remaining = self.handles.len();
        st.panicked = 0;
        self.inner.start.notify_all();
        while st.remaining > 0 {
            st = self.inner.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.job = None;
        let panicked = st.panicked;
        drop(st);
        assert!(
            panicked == 0,
            "WorkerPool::broadcast: {panicked} worker(s) panicked"
        );
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            st.shutdown = true;
            self.inner.start.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_main(inner: &PoolInner, idx: usize) {
    IN_POOL_WORKER.with(|f| f.set(true));
    let mut seen = 0u64;
    let mut st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        if st.shutdown {
            return;
        }
        if st.round > seen {
            if let Some(job) = st.job {
                seen = st.round;
                drop(st);
                // SAFETY: see `JobPtr` — the broadcaster keeps the closure
                // alive until we report completion below.
                let run = || (unsafe { &*job.0 })(idx);
                let outcome = catch_unwind(AssertUnwindSafe(run));
                st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
                if outcome.is_err() {
                    st.panicked += 1;
                }
                st.remaining -= 1;
                if st.remaining == 0 {
                    inner.done.notify_all();
                }
                continue;
            }
        }
        st = inner.start.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

/// The process-wide pool [`scope_map_dynamic`] (and the parallel packet
/// engine) dispatches to, created on first use and sized to the machine
/// (at least the first call's worker count). Larger later requests fall
/// back to scoped spawning.
pub fn global_pool(workers: usize) -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        WorkerPool::new(avail.max(workers))
    })
}

/// Run `f` over every item on its own scoped thread, returning results in
/// input order. Suited to coarse work items (a full simulation run per
/// item); for fine-grained items prefer [`scope_map_bounded`].
///
/// Panics propagate: if any worker panics, the panic resurfaces here.
pub fn scope_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let mut results: Vec<Option<R>> = Vec::new();
    results.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        for (slot, item) in results.iter_mut().zip(items) {
            let f = &f;
            scope.spawn(move || {
                *slot = Some(f(item));
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("scope_map: every worker fills its slot"))
        .collect()
}

/// Like [`scope_map`], but with at most `threads` workers, each owning a
/// contiguous chunk of items — for sweeps with many more items than cores.
pub fn scope_map_bounded<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut remaining = items;
    while !remaining.is_empty() {
        let tail = remaining.split_off(chunk.min(remaining.len()));
        chunks.push(std::mem::replace(&mut remaining, tail));
    }
    let mut results: Vec<Option<R>> = Vec::new();
    results.resize_with(n, || None);
    std::thread::scope(|scope| {
        for (slots, chunk_items) in results.chunks_mut(chunk).zip(chunks) {
            let f = &f;
            scope.spawn(move || {
                for (slot, item) in slots.iter_mut().zip(chunk_items) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("scope_map_bounded: every slot filled"))
        .collect()
}

/// Like [`scope_map_bounded`], but with dynamic scheduling: `threads`
/// workers pull the next unclaimed index from a shared atomic cursor, so
/// expensive items (an attack-active simulation cell costs many times an
/// idle one) don't straggle behind a static chunk assignment. Each worker
/// writes into the claimed item's pre-sized result slot, so output order —
/// and thus every order-sensitive fold over the results — is bit-identical
/// to the serial map regardless of which worker ran which item.
///
/// Runs on the process-wide [`WorkerPool`] when it is free and large
/// enough, eliminating the per-call spawn overhead the `sim_engine` bench
/// measures; otherwise (pool busy, request larger than the pool, or
/// called from inside a pool worker) it spawns scoped threads exactly as
/// before. Both paths produce identical results.
///
/// Panics propagate: if any worker panics, the panic resurfaces here.
pub fn scope_map_dynamic<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    dynamic_over(items, threads, f, true)
}

/// The pre-pool implementation of [`scope_map_dynamic`]: always spawns
/// scoped threads for the call. Kept callable so the `sim_engine` bench
/// can measure the pool's dispatch advantage against it.
pub fn scope_map_dynamic_spawning<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    dynamic_over(items, threads, f, false)
}

fn dynamic_over<T, R, F>(items: Vec<T>, threads: usize, f: F, use_pool: bool) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    let n = items.len();
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Mutexes are uncontended by construction (the cursor hands each index
    // to exactly one worker); they exist to make the slot handoff safe
    // without unsafe code, and cost nothing next to a work item.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let worker_loop = |_w: usize| loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let item = slots[i]
            .lock()
            .unwrap()
            .take()
            .expect("cursor hands each index to exactly one worker");
        *results[i].lock().unwrap() = Some(f(item));
    };
    // Nested calls from a pool worker must not touch the pool: the outer
    // broadcast's gate is held until this worker returns, so waiting on it
    // here would deadlock.
    let pooled = use_pool && !IN_POOL_WORKER.with(|f| f.get()) && {
        let pool = global_pool(workers);
        pool.threads() >= workers
            && pool.try_broadcast(&|w| {
                if w < workers {
                    worker_loop(w);
                }
            })
    };
    if !pooled {
        std::thread::scope(|scope| {
            for w in 0..workers {
                let worker_loop = &worker_loop;
                scope.spawn(move || worker_loop(w));
            }
        });
    }
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("no worker panicked holding a result slot")
                .expect("scope_map_dynamic: every slot filled")
        })
        .collect()
}

/// A sensible worker count for the bounded sweeps: the `IB_THREADS` env
/// var when set to a positive integer (CI and benchmarking control),
/// otherwise the machine's available parallelism, falling back to 4.
pub fn default_threads() -> usize {
    if let Some(n) = std::env::var("IB_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = scope_map(vec![1u64, 2, 3, 4, 5], |x| x * x);
        assert_eq!(out, vec![1, 4, 9, 16, 25]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = scope_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn threads_actually_run_concurrently() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::time::Duration;
        // Two workers that each wait for the other to have started: only
        // completes if both run at once.
        let started = AtomicUsize::new(0);
        let out = scope_map(vec![0, 1], |i| {
            started.fetch_add(1, Ordering::SeqCst);
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while started.load(Ordering::SeqCst) < 2 {
                assert!(std::time::Instant::now() < deadline, "peer never started");
                std::thread::yield_now();
            }
            i
        });
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn bounded_matches_unbounded() {
        let items: Vec<u64> = (0..100).collect();
        let seq = scope_map_bounded(items.clone(), 1, |x| x * 3);
        let par = scope_map_bounded(items.clone(), 8, |x| x * 3);
        let unb = scope_map(items, |x| x * 3);
        assert_eq!(seq, par);
        assert_eq!(par, unb);
    }

    #[test]
    fn bounded_with_more_threads_than_items() {
        let out = scope_map_bounded(vec![7u32, 8], 64, |x| x + 1);
        assert_eq!(out, vec![8, 9]);
    }

    /// Serializes every test that reads or writes `IB_THREADS`: env
    /// mutation is process-global and the test harness runs threads in
    /// parallel, so an unlocked set/remove races any concurrent
    /// `default_threads()` call. Lock via `into_inner` on poison — a
    /// panicked holder left no state worse than a stale env var.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn default_threads_positive() {
        let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(default_threads() >= 1);
    }

    #[test]
    fn dynamic_matches_serial_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3).collect();
        assert_eq!(scope_map_dynamic(items.clone(), 1, |x| x * 3), serial);
        assert_eq!(scope_map_dynamic(items.clone(), 8, |x| x * 3), serial);
        assert_eq!(scope_map_dynamic(items, 200, |x| x * 3), serial);
    }

    #[test]
    fn dynamic_empty_input() {
        let out: Vec<u32> = scope_map_dynamic(Vec::<u32>::new(), 8, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn dynamic_balances_skewed_work() {
        use std::time::Duration;
        // Front-loaded cost: item 0 is ~20x the rest. Static chunking
        // serializes behind the chunk holding it; the dynamic cursor lets
        // the other workers drain the cheap tail meanwhile. We assert
        // correctness (order preserved), not wall-clock — timing asserts
        // flake under CI load.
        let items: Vec<u64> = (0..32).collect();
        let out = scope_map_dynamic(items, 4, |x| {
            std::thread::sleep(Duration::from_millis(if x == 0 { 20 } else { 1 }));
            x + 1
        });
        assert_eq!(out, (1..=32).collect::<Vec<u64>>());
    }

    #[test]
    fn pool_runs_many_rounds_without_respawning() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let hits = AtomicUsize::new(0);
        for _ in 0..200 {
            pool.broadcast(&|_w| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(hits.load(Ordering::SeqCst), 800);
    }

    #[test]
    fn pool_propagates_worker_panics_and_survives() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = WorkerPool::new(2);
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.broadcast(&|w| {
                if w == 0 {
                    panic!("worker goes down");
                }
            });
        }));
        assert!(boom.is_err(), "worker panic must resurface at the caller");
        // The pool keeps working after a propagated panic.
        let hits = AtomicUsize::new(0);
        assert!(pool.try_broadcast(&|_w| {
            hits.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn nested_dynamic_inside_pool_jobs_completes() {
        // The inner call detects it is on a pool worker and spawns scoped
        // threads instead of deadlocking on the pool gate.
        let items: Vec<u64> = (0..8).collect();
        let out = scope_map_dynamic(items, 4, |x| {
            scope_map_dynamic(vec![x, x + 1], 2, |y| y * 2)
                .into_iter()
                .sum::<u64>()
        });
        assert_eq!(out, (0..8).map(|x| 4 * x + 2).collect::<Vec<u64>>());
    }

    #[test]
    fn spawning_variant_matches_pooled() {
        let items: Vec<u64> = (0..64).collect();
        let pooled = scope_map_dynamic(items.clone(), 4, |x| x * 7 + 1);
        let spawned = scope_map_dynamic_spawning(items, 4, |x| x * 7 + 1);
        assert_eq!(pooled, spawned);
    }

    #[test]
    fn ib_threads_env_overrides() {
        // Env mutation is process-global: hold ENV_LOCK for the whole
        // set/assert/remove sequence so `default_threads_positive` (or any
        // future reader) can never observe a half-applied value.
        let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::set_var("IB_THREADS", "3");
        assert_eq!(default_threads(), 3);
        std::env::set_var("IB_THREADS", "not-a-number");
        assert!(default_threads() >= 1, "garbage falls back to autodetect");
        std::env::set_var("IB_THREADS", "0");
        assert!(default_threads() >= 1, "zero is rejected");
        std::env::remove_var("IB_THREADS");
    }
}
