//! Scoped parallel sweeps over `std::thread::scope`.
//!
//! Simulator instances are independent and deterministic, so sweeps are
//! embarrassingly parallel (the HPC guides' "parallelize across
//! independent work items" idiom). These helpers replace the crossbeam
//! scoped-thread dependency with the standard library's scoped threads.

/// Run `f` over every item on its own scoped thread, returning results in
/// input order. Suited to coarse work items (a full simulation run per
/// item); for fine-grained items prefer [`scope_map_bounded`].
///
/// Panics propagate: if any worker panics, the panic resurfaces here.
pub fn scope_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let mut results: Vec<Option<R>> = Vec::new();
    results.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        for (slot, item) in results.iter_mut().zip(items) {
            let f = &f;
            scope.spawn(move || {
                *slot = Some(f(item));
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("scope_map: every worker fills its slot"))
        .collect()
}

/// Like [`scope_map`], but with at most `threads` workers, each owning a
/// contiguous chunk of items — for sweeps with many more items than cores.
pub fn scope_map_bounded<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut remaining = items;
    while !remaining.is_empty() {
        let tail = remaining.split_off(chunk.min(remaining.len()));
        chunks.push(std::mem::replace(&mut remaining, tail));
    }
    let mut results: Vec<Option<R>> = Vec::new();
    results.resize_with(n, || None);
    std::thread::scope(|scope| {
        for (slots, chunk_items) in results.chunks_mut(chunk).zip(chunks) {
            let f = &f;
            scope.spawn(move || {
                for (slot, item) in slots.iter_mut().zip(chunk_items) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("scope_map_bounded: every slot filled"))
        .collect()
}

/// Like [`scope_map_bounded`], but with dynamic scheduling: `threads`
/// workers pull the next unclaimed index from a shared atomic cursor, so
/// expensive items (an attack-active simulation cell costs many times an
/// idle one) don't straggle behind a static chunk assignment. Each worker
/// writes into the claimed item's pre-sized result slot, so output order —
/// and thus every order-sensitive fold over the results — is bit-identical
/// to the serial map regardless of which worker ran which item.
///
/// Panics propagate: if any worker panics, the panic resurfaces here.
pub fn scope_map_dynamic<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = items.len();
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Mutexes are uncontended by construction (the cursor hands each index
    // to exactly one worker); they exist to make the slot handoff safe
    // without unsafe code, and cost nothing next to a work item.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let (slots, results, cursor, f) = (&slots, &results, &cursor, &f);
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("cursor hands each index to exactly one worker");
                *results[i].lock().unwrap() = Some(f(item));
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("no worker panicked holding a result slot")
                .expect("scope_map_dynamic: every slot filled")
        })
        .collect()
}

/// A sensible worker count for the bounded sweeps: the `IB_THREADS` env
/// var when set to a positive integer (CI and benchmarking control),
/// otherwise the machine's available parallelism, falling back to 4.
pub fn default_threads() -> usize {
    if let Some(n) = std::env::var("IB_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = scope_map(vec![1u64, 2, 3, 4, 5], |x| x * x);
        assert_eq!(out, vec![1, 4, 9, 16, 25]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = scope_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn threads_actually_run_concurrently() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::time::Duration;
        // Two workers that each wait for the other to have started: only
        // completes if both run at once.
        let started = AtomicUsize::new(0);
        let out = scope_map(vec![0, 1], |i| {
            started.fetch_add(1, Ordering::SeqCst);
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while started.load(Ordering::SeqCst) < 2 {
                assert!(std::time::Instant::now() < deadline, "peer never started");
                std::thread::yield_now();
            }
            i
        });
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn bounded_matches_unbounded() {
        let items: Vec<u64> = (0..100).collect();
        let seq = scope_map_bounded(items.clone(), 1, |x| x * 3);
        let par = scope_map_bounded(items.clone(), 8, |x| x * 3);
        let unb = scope_map(items, |x| x * 3);
        assert_eq!(seq, par);
        assert_eq!(par, unb);
    }

    #[test]
    fn bounded_with_more_threads_than_items() {
        let out = scope_map_bounded(vec![7u32, 8], 64, |x| x + 1);
        assert_eq!(out, vec![8, 9]);
    }

    /// Serializes every test that reads or writes `IB_THREADS`: env
    /// mutation is process-global and the test harness runs threads in
    /// parallel, so an unlocked set/remove races any concurrent
    /// `default_threads()` call. Lock via `into_inner` on poison — a
    /// panicked holder left no state worse than a stale env var.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn default_threads_positive() {
        let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(default_threads() >= 1);
    }

    #[test]
    fn dynamic_matches_serial_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3).collect();
        assert_eq!(scope_map_dynamic(items.clone(), 1, |x| x * 3), serial);
        assert_eq!(scope_map_dynamic(items.clone(), 8, |x| x * 3), serial);
        assert_eq!(scope_map_dynamic(items, 200, |x| x * 3), serial);
    }

    #[test]
    fn dynamic_empty_input() {
        let out: Vec<u32> = scope_map_dynamic(Vec::<u32>::new(), 8, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn dynamic_balances_skewed_work() {
        use std::time::Duration;
        // Front-loaded cost: item 0 is ~20x the rest. Static chunking
        // serializes behind the chunk holding it; the dynamic cursor lets
        // the other workers drain the cheap tail meanwhile. We assert
        // correctness (order preserved), not wall-clock — timing asserts
        // flake under CI load.
        let items: Vec<u64> = (0..32).collect();
        let out = scope_map_dynamic(items, 4, |x| {
            std::thread::sleep(Duration::from_millis(if x == 0 { 20 } else { 1 }));
            x + 1
        });
        assert_eq!(out, (1..=32).collect::<Vec<u64>>());
    }

    #[test]
    fn ib_threads_env_overrides() {
        // Env mutation is process-global: hold ENV_LOCK for the whole
        // set/assert/remove sequence so `default_threads_positive` (or any
        // future reader) can never observe a half-applied value.
        let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::set_var("IB_THREADS", "3");
        assert_eq!(default_threads(), 3);
        std::env::set_var("IB_THREADS", "not-a-number");
        assert!(default_threads() >= 1, "garbage falls back to autodetect");
        std::env::set_var("IB_THREADS", "0");
        assert!(default_threads() >= 1, "zero is rejected");
        std::env::remove_var("IB_THREADS");
    }
}
