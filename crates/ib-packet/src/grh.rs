//! Global Route Header (IBA spec §8.3) — 40 bytes, present when LRH.LNH is
//! `IbaGlobal` (inter-subnet traffic through routers).
//!
//! Three GRH fields are *variant* (routers rewrite them): Traffic Class,
//! Flow Label, and Hop Limit; ICRC masks them to 1s (spec §7.8.1).

use crate::error::ParseError;

/// 128-bit Global Identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Gid(pub u128);

/// Global Route Header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grh {
    /// IP version field (6 for IBA's IPv6-compatible GRH).
    pub ip_ver: u8,
    /// Traffic class (variant).
    pub traffic_class: u8,
    /// Flow label, 20 bits (variant).
    pub flow_label: u32,
    /// Payload length in bytes: everything after the GRH, incl. ICRC.
    pub pay_len: u16,
    /// Next header (0x1B = IBA BTH).
    pub next_header: u8,
    /// Hop limit (variant; routers decrement).
    pub hop_limit: u8,
    /// Source GID.
    pub sgid: Gid,
    /// Destination GID.
    pub dgid: Gid,
}

/// Serialized GRH size in bytes.
pub const GRH_LEN: usize = 40;
/// The IBA "next header" code for BTH.
pub const NXT_HDR_IBA: u8 = 0x1B;

impl Default for Grh {
    fn default() -> Self {
        Grh {
            ip_ver: 6,
            traffic_class: 0,
            flow_label: 0,
            pay_len: 0,
            next_header: NXT_HDR_IBA,
            hop_limit: 64,
            sgid: Gid(0),
            dgid: Gid(0),
        }
    }
}

impl Grh {
    /// Serialize into a 40-byte array.
    pub fn to_bytes(&self) -> [u8; GRH_LEN] {
        let mut b = [0u8; GRH_LEN];
        let word0: u32 = ((self.ip_ver as u32 & 0xF) << 28)
            | ((self.traffic_class as u32) << 20)
            | (self.flow_label & 0x000F_FFFF);
        b[0..4].copy_from_slice(&word0.to_be_bytes());
        b[4..6].copy_from_slice(&self.pay_len.to_be_bytes());
        b[6] = self.next_header;
        b[7] = self.hop_limit;
        b[8..24].copy_from_slice(&self.sgid.0.to_be_bytes());
        b[24..40].copy_from_slice(&self.dgid.0.to_be_bytes());
        b
    }

    /// Parse from the first 40 bytes of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < GRH_LEN {
            return Err(ParseError::Truncated {
                needed: GRH_LEN,
                got: buf.len(),
            });
        }
        let word0 = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
        Ok(Grh {
            ip_ver: (word0 >> 28) as u8,
            traffic_class: ((word0 >> 20) & 0xFF) as u8,
            flow_label: word0 & 0x000F_FFFF,
            pay_len: u16::from_be_bytes([buf[4], buf[5]]),
            next_header: buf[6],
            hop_limit: buf[7],
            sgid: Gid(u128::from_be_bytes(buf[8..24].try_into().unwrap())),
            dgid: Gid(u128::from_be_bytes(buf[24..40].try_into().unwrap())),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Grh {
        Grh {
            ip_ver: 6,
            traffic_class: 0xAB,
            flow_label: 0x000F_F00D,
            pay_len: 1040,
            next_header: NXT_HDR_IBA,
            hop_limit: 63,
            sgid: Gid(0x0123_4567_89AB_CDEF_0011_2233_4455_6677),
            dgid: Gid(0xFEDC_BA98_7654_3210_8899_AABB_CCDD_EEFF),
        }
    }

    #[test]
    fn roundtrip() {
        let grh = sample();
        assert_eq!(Grh::parse(&grh.to_bytes()).unwrap(), grh);
    }

    #[test]
    fn flow_label_masked_to_20_bits() {
        let mut grh = sample();
        grh.flow_label = 0xFFFF_FFFF;
        let parsed = Grh::parse(&grh.to_bytes()).unwrap();
        assert_eq!(parsed.flow_label, 0x000F_FFFF);
    }

    #[test]
    fn word0_packing() {
        let b = sample().to_bytes();
        // 6 | 0xAB | 0xFF00D -> 0x6A_BF_F0_0D
        assert_eq!(&b[0..4], &[0x6A, 0xBF, 0xF0, 0x0D]);
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            Grh::parse(&[0u8; 39]),
            Err(ParseError::Truncated {
                needed: 40,
                got: 39
            })
        ));
    }

    #[test]
    fn default_is_iba_next_header() {
        assert_eq!(Grh::default().next_header, NXT_HDR_IBA);
        assert_eq!(Grh::default().ip_ver, 6);
    }
}
