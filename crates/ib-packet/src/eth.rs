//! Extended Transport Headers (IBA spec §9.3): DETH, RETH, AETH, and
//! immediate data.
//!
//! The DETH carries the plaintext **Q_Key** and the RETH the plaintext
//! **R_Key** — the two extended-header keys whose exposure the paper's
//! Table 3 analyzes. Both travel inside ICRC coverage, so under the
//! ICRC-as-MAC scheme they become *authenticated* fields: knowing a leaked
//! key is no longer enough to forge a packet that verifies.

use crate::error::ParseError;
use crate::types::{QKey, Qpn, RKey};

/// Datagram Extended Transport Header (8 bytes): Q_Key, source QP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Deth {
    /// Queue key authorizing access to the destination QP.
    pub qkey: QKey,
    /// Source queue pair number.
    pub src_qp: Qpn,
}

/// Serialized DETH size in bytes.
pub const DETH_LEN: usize = 8;

impl Deth {
    /// Serialize into an 8-byte array.
    pub fn to_bytes(&self) -> [u8; DETH_LEN] {
        let mut b = [0u8; DETH_LEN];
        b[0..4].copy_from_slice(&self.qkey.0.to_be_bytes());
        let sqp = self.src_qp.0.to_be_bytes();
        b[5..8].copy_from_slice(&sqp[1..4]);
        b
    }

    /// Parse from the first 8 bytes of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < DETH_LEN {
            return Err(ParseError::Truncated {
                needed: DETH_LEN,
                got: buf.len(),
            });
        }
        Ok(Deth {
            qkey: QKey(u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]])),
            src_qp: Qpn(u32::from_be_bytes([0, buf[5], buf[6], buf[7]])),
        })
    }
}

/// RDMA Extended Transport Header (16 bytes): virtual address, R_Key,
/// DMA length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Reth {
    /// Remote virtual address the RDMA targets.
    pub virt_addr: u64,
    /// Remote memory key.
    pub rkey: RKey,
    /// DMA length in bytes.
    pub dma_len: u32,
}

/// Serialized RETH size in bytes.
pub const RETH_LEN: usize = 16;

impl Reth {
    /// Serialize into a 16-byte array.
    pub fn to_bytes(&self) -> [u8; RETH_LEN] {
        let mut b = [0u8; RETH_LEN];
        b[0..8].copy_from_slice(&self.virt_addr.to_be_bytes());
        b[8..12].copy_from_slice(&self.rkey.0.to_be_bytes());
        b[12..16].copy_from_slice(&self.dma_len.to_be_bytes());
        b
    }

    /// Parse from the first 16 bytes of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < RETH_LEN {
            return Err(ParseError::Truncated {
                needed: RETH_LEN,
                got: buf.len(),
            });
        }
        Ok(Reth {
            virt_addr: u64::from_be_bytes(buf[0..8].try_into().unwrap()),
            rkey: RKey(u32::from_be_bytes(buf[8..12].try_into().unwrap())),
            dma_len: u32::from_be_bytes(buf[12..16].try_into().unwrap()),
        })
    }
}

/// ACK Extended Transport Header (4 bytes): syndrome + message sequence
/// number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Aeth {
    /// ACK/NAK syndrome.
    pub syndrome: u8,
    /// Message sequence number (24 bits).
    pub msn: u32,
}

/// Serialized AETH size in bytes.
pub const AETH_LEN: usize = 4;

impl Aeth {
    /// Serialize into a 4-byte array.
    pub fn to_bytes(&self) -> [u8; AETH_LEN] {
        let msn = self.msn.to_be_bytes();
        [self.syndrome, msn[1], msn[2], msn[3]]
    }

    /// Parse from the first 4 bytes of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < AETH_LEN {
            return Err(ParseError::Truncated {
                needed: AETH_LEN,
                got: buf.len(),
            });
        }
        Ok(Aeth {
            syndrome: buf[0],
            msn: u32::from_be_bytes([0, buf[1], buf[2], buf[3]]),
        })
    }
}

/// Immediate data (4 bytes), delivered to the receive completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ImmDt(pub u32);

/// Serialized immediate-data size in bytes.
pub const IMMDT_LEN: usize = 4;

impl ImmDt {
    /// Serialize into a 4-byte array.
    pub fn to_bytes(&self) -> [u8; IMMDT_LEN] {
        self.0.to_be_bytes()
    }

    /// Parse from the first 4 bytes of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < IMMDT_LEN {
            return Err(ParseError::Truncated {
                needed: IMMDT_LEN,
                got: buf.len(),
            });
        }
        Ok(ImmDt(u32::from_be_bytes(buf[0..4].try_into().unwrap())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deth_roundtrip() {
        let deth = Deth {
            qkey: QKey(0xDEAD_BEEF),
            src_qp: Qpn(0x00012345),
        };
        assert_eq!(Deth::parse(&deth.to_bytes()).unwrap(), deth);
    }

    #[test]
    fn deth_reserved_byte_zero() {
        let deth = Deth {
            qkey: QKey(1),
            src_qp: Qpn(2),
        };
        assert_eq!(deth.to_bytes()[4], 0);
    }

    #[test]
    fn reth_roundtrip() {
        let reth = Reth {
            virt_addr: 0x0000_7FFF_DEAD_0000,
            rkey: RKey(0xCAFE_BABE),
            dma_len: 4096,
        };
        assert_eq!(Reth::parse(&reth.to_bytes()).unwrap(), reth);
    }

    #[test]
    fn aeth_roundtrip() {
        let aeth = Aeth {
            syndrome: 0x1F,
            msn: 0x00ABCDEF,
        };
        assert_eq!(Aeth::parse(&aeth.to_bytes()).unwrap(), aeth);
    }

    #[test]
    fn aeth_msn_masked() {
        let aeth = Aeth {
            syndrome: 0,
            msn: 0xFF123456,
        };
        let parsed = Aeth::parse(&aeth.to_bytes()).unwrap();
        assert_eq!(parsed.msn, 0x00123456);
    }

    #[test]
    fn immdt_roundtrip() {
        let imm = ImmDt(0x01020304);
        assert_eq!(ImmDt::parse(&imm.to_bytes()).unwrap(), imm);
    }

    #[test]
    fn truncation_errors() {
        assert!(Deth::parse(&[0; 7]).is_err());
        assert!(Reth::parse(&[0; 15]).is_err());
        assert!(Aeth::parse(&[0; 3]).is_err());
        assert!(ImmDt::parse(&[0; 3]).is_err());
    }
}
