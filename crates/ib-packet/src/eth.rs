//! Extended Transport Headers (IBA spec §9.3): DETH, RETH, AETH, and
//! immediate data.
//!
//! The DETH carries the plaintext **Q_Key** and the RETH the plaintext
//! **R_Key** — the two extended-header keys whose exposure the paper's
//! Table 3 analyzes. Both travel inside ICRC coverage, so under the
//! ICRC-as-MAC scheme they become *authenticated* fields: knowing a leaked
//! key is no longer enough to forge a packet that verifies.

use crate::error::ParseError;
use crate::types::{QKey, Qpn, RKey};

/// Datagram Extended Transport Header (8 bytes): Q_Key, source QP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Deth {
    /// Queue key authorizing access to the destination QP.
    pub qkey: QKey,
    /// Source queue pair number.
    pub src_qp: Qpn,
}

/// Serialized DETH size in bytes.
pub const DETH_LEN: usize = 8;

impl Deth {
    /// Serialize into an 8-byte array.
    pub fn to_bytes(&self) -> [u8; DETH_LEN] {
        let mut b = [0u8; DETH_LEN];
        b[0..4].copy_from_slice(&self.qkey.0.to_be_bytes());
        let sqp = self.src_qp.0.to_be_bytes();
        b[5..8].copy_from_slice(&sqp[1..4]);
        b
    }

    /// Parse from the first 8 bytes of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < DETH_LEN {
            return Err(ParseError::Truncated {
                needed: DETH_LEN,
                got: buf.len(),
            });
        }
        Ok(Deth {
            qkey: QKey(u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]])),
            src_qp: Qpn(u32::from_be_bytes([0, buf[5], buf[6], buf[7]])),
        })
    }
}

/// RDMA Extended Transport Header (16 bytes): virtual address, R_Key,
/// DMA length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Reth {
    /// Remote virtual address the RDMA targets.
    pub virt_addr: u64,
    /// Remote memory key.
    pub rkey: RKey,
    /// DMA length in bytes.
    pub dma_len: u32,
}

/// Serialized RETH size in bytes.
pub const RETH_LEN: usize = 16;

impl Reth {
    /// Serialize into a 16-byte array.
    pub fn to_bytes(&self) -> [u8; RETH_LEN] {
        let mut b = [0u8; RETH_LEN];
        b[0..8].copy_from_slice(&self.virt_addr.to_be_bytes());
        b[8..12].copy_from_slice(&self.rkey.0.to_be_bytes());
        b[12..16].copy_from_slice(&self.dma_len.to_be_bytes());
        b
    }

    /// Parse from the first 16 bytes of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < RETH_LEN {
            return Err(ParseError::Truncated {
                needed: RETH_LEN,
                got: buf.len(),
            });
        }
        Ok(Reth {
            virt_addr: u64::from_be_bytes(buf[0..8].try_into().unwrap()),
            rkey: RKey(u32::from_be_bytes(buf[8..12].try_into().unwrap())),
            dma_len: u32::from_be_bytes(buf[12..16].try_into().unwrap()),
        })
    }
}

/// ACK Extended Transport Header (4 bytes): syndrome + message sequence
/// number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Aeth {
    /// ACK/NAK syndrome.
    pub syndrome: u8,
    /// Message sequence number (24 bits).
    pub msn: u32,
}

/// NAK codes carried in the low 5 syndrome bits when bits [6:5] = `11`
/// (IBA spec §9.7.5.2.4 — table 58). The RC transport emits
/// [`NakCode::PsnSequenceError`] for an out-of-sequence PSN; the rest are
/// defined for completeness of the wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NakCode {
    /// PSN outside the receiver's expected sequence — the go-back-N
    /// retransmission trigger.
    PsnSequenceError,
    /// Unsupported or malformed request.
    InvalidRequest,
    /// R_Key / access-rights violation.
    RemoteAccessError,
    /// Responder could not complete the operation.
    RemoteOperationalError,
    /// Invalid RD request (reliable-datagram only).
    InvalidRdRequest,
}

impl NakCode {
    const ALL: [NakCode; 5] = [
        NakCode::PsnSequenceError,
        NakCode::InvalidRequest,
        NakCode::RemoteAccessError,
        NakCode::RemoteOperationalError,
        NakCode::InvalidRdRequest,
    ];

    /// Low-5-bit wire value.
    pub fn value(self) -> u8 {
        match self {
            NakCode::PsnSequenceError => 0,
            NakCode::InvalidRequest => 1,
            NakCode::RemoteAccessError => 2,
            NakCode::RemoteOperationalError => 3,
            NakCode::InvalidRdRequest => 4,
        }
    }

    /// Inverse of [`value`](Self::value); `None` for reserved codes.
    pub fn from_value(v: u8) -> Option<NakCode> {
        Self::ALL.into_iter().find(|c| c.value() == v)
    }
}

/// Decoded meaning of an AETH syndrome byte (IBA spec §9.7.5.2.4: bit 7
/// reserved, bits [6:5] select ACK `00` / RNR NAK `01` / NAK `11`, low 5
/// bits carry the credit count, RNR timer, or NAK code respectively).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AethKind {
    /// Positive acknowledgment; `credits` is the encoded end-to-end credit
    /// count (opaque to this crate).
    Ack { credits: u8 },
    /// Receiver-not-ready NAK; `timer` encodes the minimum retry delay.
    Rnr { timer: u8 },
    /// Negative acknowledgment with a [`NakCode`].
    Nak(NakCode),
}

/// Serialized AETH size in bytes.
pub const AETH_LEN: usize = 4;

impl Aeth {
    /// Positive ACK syndrome (bits [6:5] = `00`, zero credits).
    pub fn ack(msn: u32) -> Aeth {
        Aeth {
            syndrome: 0x00,
            msn: msn & 0x00FF_FFFF,
        }
    }

    /// RNR NAK syndrome (bits [6:5] = `01`) with a 5-bit timer field.
    pub fn rnr(timer: u8, msn: u32) -> Aeth {
        Aeth {
            syndrome: 0x20 | (timer & 0x1F),
            msn: msn & 0x00FF_FFFF,
        }
    }

    /// NAK syndrome (bits [6:5] = `11`) carrying `code`.
    pub fn nak(code: NakCode, msn: u32) -> Aeth {
        Aeth {
            syndrome: 0x60 | code.value(),
            msn: msn & 0x00FF_FFFF,
        }
    }

    /// Decode the syndrome; `None` for reserved encodings (bit 7 set,
    /// the reserved `10` class, or a reserved NAK code).
    pub fn kind(&self) -> Option<AethKind> {
        if self.syndrome & 0x80 != 0 {
            return None;
        }
        let low = self.syndrome & 0x1F;
        match (self.syndrome >> 5) & 0x3 {
            0b00 => Some(AethKind::Ack { credits: low }),
            0b01 => Some(AethKind::Rnr { timer: low }),
            0b11 => NakCode::from_value(low).map(AethKind::Nak),
            _ => None,
        }
    }
    /// Serialize into a 4-byte array.
    pub fn to_bytes(&self) -> [u8; AETH_LEN] {
        let msn = self.msn.to_be_bytes();
        [self.syndrome, msn[1], msn[2], msn[3]]
    }

    /// Parse from the first 4 bytes of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < AETH_LEN {
            return Err(ParseError::Truncated {
                needed: AETH_LEN,
                got: buf.len(),
            });
        }
        Ok(Aeth {
            syndrome: buf[0],
            msn: u32::from_be_bytes([0, buf[1], buf[2], buf[3]]),
        })
    }
}

/// Immediate data (4 bytes), delivered to the receive completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ImmDt(pub u32);

/// Serialized immediate-data size in bytes.
pub const IMMDT_LEN: usize = 4;

impl ImmDt {
    /// Serialize into a 4-byte array.
    pub fn to_bytes(&self) -> [u8; IMMDT_LEN] {
        self.0.to_be_bytes()
    }

    /// Parse from the first 4 bytes of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < IMMDT_LEN {
            return Err(ParseError::Truncated {
                needed: IMMDT_LEN,
                got: buf.len(),
            });
        }
        Ok(ImmDt(u32::from_be_bytes(buf[0..4].try_into().unwrap())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deth_roundtrip() {
        let deth = Deth {
            qkey: QKey(0xDEAD_BEEF),
            src_qp: Qpn(0x00012345),
        };
        assert_eq!(Deth::parse(&deth.to_bytes()).unwrap(), deth);
    }

    #[test]
    fn deth_reserved_byte_zero() {
        let deth = Deth {
            qkey: QKey(1),
            src_qp: Qpn(2),
        };
        assert_eq!(deth.to_bytes()[4], 0);
    }

    #[test]
    fn reth_roundtrip() {
        let reth = Reth {
            virt_addr: 0x0000_7FFF_DEAD_0000,
            rkey: RKey(0xCAFE_BABE),
            dma_len: 4096,
        };
        assert_eq!(Reth::parse(&reth.to_bytes()).unwrap(), reth);
    }

    #[test]
    fn aeth_roundtrip() {
        let aeth = Aeth {
            syndrome: 0x1F,
            msn: 0x00ABCDEF,
        };
        assert_eq!(Aeth::parse(&aeth.to_bytes()).unwrap(), aeth);
    }

    #[test]
    fn aeth_msn_masked() {
        let aeth = Aeth {
            syndrome: 0,
            msn: 0xFF123456,
        };
        let parsed = Aeth::parse(&aeth.to_bytes()).unwrap();
        assert_eq!(parsed.msn, 0x00123456);
    }

    #[test]
    fn aeth_kind_roundtrip() {
        let ack = Aeth::ack(7);
        assert_eq!(ack.kind(), Some(AethKind::Ack { credits: 0 }));
        assert_eq!(ack.msn, 7);

        let rnr = Aeth::rnr(0x15, 9);
        assert_eq!(rnr.kind(), Some(AethKind::Rnr { timer: 0x15 }));
        assert_eq!(rnr.syndrome, 0x35);

        let nak = Aeth::nak(NakCode::PsnSequenceError, 3);
        assert_eq!(nak.kind(), Some(AethKind::Nak(NakCode::PsnSequenceError)));
        assert_eq!(nak.syndrome, 0x60);
        // Survives serialization.
        let parsed = Aeth::parse(&nak.to_bytes()).unwrap();
        assert_eq!(parsed.kind(), nak.kind());
    }

    #[test]
    fn aeth_kind_rejects_reserved() {
        // Bit 7 set: reserved.
        assert_eq!(
            Aeth {
                syndrome: 0x80,
                msn: 0
            }
            .kind(),
            None
        );
        // Class `10`: reserved.
        assert_eq!(
            Aeth {
                syndrome: 0x40,
                msn: 0
            }
            .kind(),
            None
        );
        // NAK with a reserved code (5..=31).
        assert_eq!(
            Aeth {
                syndrome: 0x60 | 5,
                msn: 0
            }
            .kind(),
            None
        );
        assert_eq!(
            Aeth {
                syndrome: 0x7F,
                msn: 0
            }
            .kind(),
            None
        );
    }

    #[test]
    fn nak_code_values() {
        for code in [
            NakCode::PsnSequenceError,
            NakCode::InvalidRequest,
            NakCode::RemoteAccessError,
            NakCode::RemoteOperationalError,
            NakCode::InvalidRdRequest,
        ] {
            assert_eq!(NakCode::from_value(code.value()), Some(code));
        }
        assert_eq!(NakCode::from_value(5), None);
        assert_eq!(NakCode::from_value(31), None);
    }

    #[test]
    fn immdt_roundtrip() {
        let imm = ImmDt(0x01020304);
        assert_eq!(ImmDt::parse(&imm.to_bytes()).unwrap(), imm);
    }

    #[test]
    fn truncation_errors() {
        assert!(Deth::parse(&[0; 7]).is_err());
        assert!(Reth::parse(&[0; 15]).is_err());
        assert!(Aeth::parse(&[0; 3]).is_err());
        assert!(ImmDt::parse(&[0; 3]).is_err());
    }
}
