//! Whole-packet composition, serialization, parsing, and CRC handling.
//!
//! The central security-relevant artifact is [`Packet::icrc_message`]: the
//! byte stream the ICRC covers — all *invariant* fields, with the variant
//! fields (LRH.VL; GRH traffic class, flow label, hop limit; BTH.Resv8a)
//! masked to ones per IBA spec §7.8.1. Under the paper's scheme this same
//! stream is what the MAC authenticates, so:
//!
//! * switches can still rewrite VL / hop limit without invalidating the tag,
//! * the BTH.Resv8a selector byte is writable without re-tagging, and
//! * every key the attacker might have captured (P_Key in BTH, Q_Key in
//!   DETH, R_Key in RETH) *is* covered, closing the Table 3 forgery paths.

use crate::bth::{Bth, BTH_LEN, BTH_RESV8A_OFFSET};
use crate::error::ParseError;
use crate::eth::{Aeth, Deth, Reth, AETH_LEN, DETH_LEN, RETH_LEN};
use crate::grh::{Grh, GRH_LEN};
use crate::lrh::{Lnh, Lrh, LRH_LEN};
use crate::opcode::OpCode;
use crate::types::{Lid, PKey, Psn, QKey, Qpn, RKey, VirtualLane};
use ib_crypto::crc::{Crc16, Crc32};

/// ICRC field size on the wire.
pub const ICRC_LEN: usize = 4;
/// VCRC field size on the wire.
pub const VCRC_LEN: usize = 2;

/// A fully-described IBA data packet.
///
/// Invariant once [`Packet::seal`] has run: `lrh.pkt_len`, `bth.pad_count`,
/// `icrc` and `vcrc` are consistent with the contents. The `icrc` field
/// holds either a real CRC-32 (when `bth.resv8a == 0`) or an authentication
/// tag (non-zero selector) — the wire layout is identical, which is the
/// paper's compatibility argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    pub lrh: Lrh,
    pub grh: Option<Grh>,
    pub bth: Bth,
    pub deth: Option<Deth>,
    pub reth: Option<Reth>,
    pub aeth: Option<Aeth>,
    pub payload: Vec<u8>,
    /// ICRC or authentication tag (see struct docs).
    pub icrc: u32,
    /// Link-level variant CRC.
    pub vcrc: u16,
}

/// Upper bound on the header bytes of any packet shape (every optional
/// header present at once) — sizes the stack image in
/// [`Packet::for_each_icrc_slice`].
const MAX_HEADER_LEN: usize = LRH_LEN + GRH_LEN + BTH_LEN + DETH_LEN + RETH_LEN + AETH_LEN;

impl Packet {
    /// Total on-wire size in bytes (LRH through VCRC).
    pub fn wire_len(&self) -> usize {
        self.header_len() + self.padded_payload_len() + ICRC_LEN + VCRC_LEN
    }

    fn header_len(&self) -> usize {
        LRH_LEN
            + self.grh.map_or(0, |_| GRH_LEN)
            + BTH_LEN
            + self.deth.map_or(0, |_| DETH_LEN)
            + self.reth.map_or(0, |_| RETH_LEN)
            + self.aeth.map_or(0, |_| AETH_LEN)
    }

    fn padded_payload_len(&self) -> usize {
        self.payload.len() + self.bth.pad_count as usize
    }

    /// Recompute the length-derived fields only: pad count and LRH packet
    /// length (in 4-byte words, through the ICRC). The send hot path runs
    /// this after swapping the payload of a reused packet template, then
    /// lets the security layer fill `icrc`/`vcrc`.
    pub fn seal_lengths(&mut self) {
        self.bth.pad_count = ((4 - (self.payload.len() % 4)) % 4) as u8;
        let words = (self.header_len() + self.padded_payload_len() + ICRC_LEN) / 4;
        self.lrh.pkt_len = words as u16;
    }

    /// Recompute the derived fields so the packet is internally consistent:
    /// pad count, LRH packet length (in 4-byte words, through the ICRC),
    /// then ICRC (plain CRC-32 mode) and VCRC. Callers installing an
    /// authentication tag run `seal()` first, then overwrite `icrc` via
    /// [`Packet::set_auth_tag`] and refresh the VCRC.
    pub fn seal(&mut self) {
        self.seal_lengths();
        self.icrc = self.compute_icrc();
        self.vcrc = self.compute_vcrc();
    }

    /// Walk the *invariant-field* byte stream the ICRC (and the MAC
    /// replacing it) covers, as a sequence of in-place slices: headers with
    /// variant fields masked to ones (LRH.VL; GRH traffic class, flow
    /// label, hop limit; BTH.Resv8a — IBA spec §7.8.1), then payload and
    /// pad bytes. Masked headers are rebuilt in stack buffers; the payload
    /// is visited in place, so no heap allocation happens here. Streaming
    /// MAC/CRC consumers hang off this visitor.
    pub fn for_each_icrc_slice(&self, mut f: impl FnMut(&[u8])) {
        // All masked headers coalesce into one stack image before the
        // visitor sees them: fewer, larger slices keep streaming MAC
        // kernels on their bulk path instead of their boundary path.
        let mut hdr = [0u8; MAX_HEADER_LEN];
        let mut n = 0;
        {
            let lrh = self.lrh.to_bytes();
            hdr[n..n + lrh.len()].copy_from_slice(&lrh);
            hdr[n] |= 0xF0; // VL is variant
            n += lrh.len();
        }
        if let Some(grh) = &self.grh {
            let g = grh.to_bytes();
            hdr[n..n + g.len()].copy_from_slice(&g);
            // Traffic class + flow label live in the low 28 bits of word 0.
            hdr[n] |= 0x0F;
            hdr[n + 1] = 0xFF;
            hdr[n + 2] = 0xFF;
            hdr[n + 3] = 0xFF;
            hdr[n + 7] = 0xFF; // hop limit
            n += g.len();
        }
        {
            let bth = self.bth.to_bytes();
            hdr[n..n + bth.len()].copy_from_slice(&bth);
            // Resv8a is variant — the selector rides here.
            hdr[n + BTH_RESV8A_OFFSET] = 0xFF;
            n += bth.len();
        }
        if let Some(deth) = &self.deth {
            let b = deth.to_bytes();
            hdr[n..n + b.len()].copy_from_slice(&b);
            n += b.len();
        }
        if let Some(reth) = &self.reth {
            let b = reth.to_bytes();
            hdr[n..n + b.len()].copy_from_slice(&b);
            n += b.len();
        }
        if let Some(aeth) = &self.aeth {
            let b = aeth.to_bytes();
            hdr[n..n + b.len()].copy_from_slice(&b);
            n += b.len();
        }
        f(&hdr[..n]);
        f(&self.payload);
        const ZERO_PAD: [u8; 4] = [0; 4];
        f(&ZERO_PAD[..self.bth.pad_count as usize]);
    }

    /// Walk the unmasked wire bytes from LRH through the pad (exclusive of
    /// ICRC/VCRC), as in-place slices. Serialization and the VCRC share
    /// this walk.
    fn for_each_wire_slice(&self, mut f: impl FnMut(&[u8])) {
        f(&self.lrh.to_bytes());
        if let Some(grh) = &self.grh {
            f(&grh.to_bytes());
        }
        f(&self.bth.to_bytes());
        if let Some(deth) = &self.deth {
            f(&deth.to_bytes());
        }
        if let Some(reth) = &self.reth {
            f(&reth.to_bytes());
        }
        if let Some(aeth) = &self.aeth {
            f(&aeth.to_bytes());
        }
        f(&self.payload);
        const ZERO_PAD: [u8; 4] = [0; 4];
        f(&ZERO_PAD[..self.bth.pad_count as usize]);
    }

    /// Serialize into a reusable buffer (cleared first, capacity retained
    /// across calls — the steady-state send path allocates nothing). The
    /// packet should be sealed (or have had a tag installed) first; this
    /// emits fields verbatim.
    pub fn write_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.reserve(self.wire_len());
        self.for_each_wire_slice(|s| out.extend_from_slice(s));
        out.extend_from_slice(&self.icrc.to_be_bytes());
        out.extend_from_slice(&self.vcrc.to_be_bytes());
    }

    /// Serialize to freshly-allocated wire bytes. Hot paths prefer
    /// [`Packet::write_into`] with a reused buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_into(&mut out);
        out
    }

    /// Materialize the invariant-field byte stream into a reusable buffer
    /// (cleared first, capacity retained across calls). Same bytes as
    /// [`Packet::for_each_icrc_slice`] visits.
    pub fn icrc_message_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.reserve(self.header_len() + self.padded_payload_len());
        self.for_each_icrc_slice(|s| out.extend_from_slice(s));
    }

    /// The invariant-field byte stream as a fresh allocation. Hot paths
    /// use [`Packet::for_each_icrc_slice`] (zero-copy) or
    /// [`Packet::icrc_message_into`] (reused buffer) instead.
    pub fn icrc_message(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.icrc_message_into(&mut out);
        out
    }

    /// Compute the CRC-32 ICRC over the invariant fields without
    /// materializing the masked copy (carry-less folding kernel when the
    /// CPU has PCLMULQDQ, slice-by-8 otherwise — bit-identical either way).
    pub fn compute_icrc(&self) -> u32 {
        let mut crc = Crc32::new();
        self.for_each_icrc_slice(|s| {
            crc.update_auto(s);
        });
        crc.finalize()
    }

    /// Alias making the coverage relationship explicit at call sites.
    #[inline]
    pub fn icrc_over_invariant_fields(&self) -> u32 {
        self.compute_icrc()
    }

    /// Compute the VCRC: CRC-16 over everything from LRH through the ICRC
    /// field, *unmasked* (the VCRC is recomputed by every switch that
    /// rewrites a variant field).
    pub fn compute_vcrc(&self) -> u16 {
        let mut crc = Crc16::new();
        self.for_each_wire_slice(|s| {
            crc.update(s);
        });
        crc.update(&self.icrc.to_be_bytes());
        crc.finalize()
    }

    /// Install an authentication tag: set the BTH selector, place the tag in
    /// the ICRC field, and refresh the VCRC (which covers the tag bytes).
    pub fn set_auth_tag(&mut self, selector: u8, tag: u32) {
        self.bth.resv8a = selector;
        self.icrc = tag;
        self.vcrc = self.compute_vcrc();
    }

    /// True if the stored ICRC matches the computed CRC-32 (only meaningful
    /// when `bth.resv8a == 0`).
    pub fn icrc_ok(&self) -> bool {
        self.icrc == self.compute_icrc()
    }

    /// True if the stored VCRC matches.
    pub fn vcrc_ok(&self) -> bool {
        self.vcrc == self.compute_vcrc()
    }

    /// A switch moving this packet to a different VL: rewrite the variant
    /// field and recompute only the VCRC — the ICRC/tag must survive, which
    /// [`tests::vl_rewrite_preserves_icrc`] verifies.
    pub fn rewrite_vl(&mut self, vl: VirtualLane) {
        self.lrh.vl = vl;
        self.vcrc = self.compute_vcrc();
    }

    /// Parse and validate a wire buffer. Checks structural consistency and
    /// the VCRC; ICRC verification is left to the caller because under the
    /// authentication scheme the field may hold a MAC tag instead.
    pub fn parse(buf: &[u8]) -> Result<Packet, ParseError> {
        let mut pkt = PacketBuilder::new(OpCode::RC_SEND_ONLY).packet;
        pkt.parse_into(buf)?;
        Ok(pkt)
    }

    /// Parse a wire buffer into `self`, reusing the payload allocation
    /// (cleared first, capacity retained) — the batch receive path's
    /// allocation-free counterpart to [`Packet::parse`], with identical
    /// validation. On `Err` the packet may be partially overwritten and
    /// must not be trusted.
    pub fn parse_into(&mut self, buf: &[u8]) -> Result<(), ParseError> {
        let lrh = Lrh::parse(buf)?;
        let expected_len = lrh.pkt_len as usize * 4 + VCRC_LEN;
        if buf.len() < expected_len {
            return Err(ParseError::Truncated {
                needed: expected_len,
                got: buf.len(),
            });
        }
        if buf.len() != expected_len {
            return Err(ParseError::LengthMismatch {
                header_words: lrh.pkt_len,
                actual_words: buf.len() / 4,
            });
        }
        let mut off = LRH_LEN;
        let grh = if lrh.lnh == Lnh::IbaGlobal {
            let g = Grh::parse(&buf[off..])?;
            off += GRH_LEN;
            Some(g)
        } else {
            None
        };
        let bth = Bth::parse(&buf[off..])?;
        off += BTH_LEN;
        let deth = if bth.opcode.service.has_deth() {
            let d = Deth::parse(&buf[off..])?;
            off += DETH_LEN;
            Some(d)
        } else {
            None
        };
        let reth = if bth.opcode.operation.has_reth() {
            let r = Reth::parse(&buf[off..])?;
            off += RETH_LEN;
            Some(r)
        } else {
            None
        };
        let aeth = if bth.opcode.operation.has_aeth() {
            let a = Aeth::parse(&buf[off..])?;
            off += AETH_LEN;
            Some(a)
        } else {
            None
        };
        let trailer = ICRC_LEN + VCRC_LEN;
        if buf.len() < off + trailer {
            return Err(ParseError::Truncated {
                needed: off + trailer,
                got: buf.len(),
            });
        }
        let padded_payload_len = buf.len() - off - trailer;
        if (bth.pad_count as usize) > padded_payload_len {
            return Err(ParseError::BadPadCount {
                pad: bth.pad_count,
                payload_len: padded_payload_len,
            });
        }
        let payload_len = padded_payload_len - bth.pad_count as usize;
        self.lrh = lrh;
        self.grh = grh;
        self.bth = bth;
        self.deth = deth;
        self.reth = reth;
        self.aeth = aeth;
        self.payload.clear();
        self.payload.extend_from_slice(&buf[off..off + payload_len]);
        let icrc_off = off + padded_payload_len;
        self.icrc = u32::from_be_bytes(buf[icrc_off..icrc_off + 4].try_into().unwrap());
        self.vcrc = u16::from_be_bytes(buf[icrc_off + 4..icrc_off + 6].try_into().unwrap());
        let computed_vcrc = self.compute_vcrc();
        if computed_vcrc != self.vcrc {
            return Err(ParseError::BadVcrc {
                expected: computed_vcrc,
                got: self.vcrc,
            });
        }
        Ok(())
    }
}

/// Fluent builder for [`Packet`]. Produces a sealed packet (valid CRCs in
/// plain-ICRC mode); authentication layers then swap the tag in.
///
/// ```
/// use ib_packet::{PacketBuilder, OpCode, Lid, PKey, Psn, Qpn};
/// let pkt = PacketBuilder::new(OpCode::RC_SEND_ONLY)
///     .slid(Lid(1)).dlid(Lid(2))
///     .pkey(PKey(0x8001))
///     .dest_qp(Qpn(7)).psn(Psn(0))
///     .payload(b"hello".to_vec())
///     .build();
/// assert!(pkt.icrc_ok() && pkt.vcrc_ok());
/// ```
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    packet: Packet,
}

impl PacketBuilder {
    /// Start a packet with the given opcode; extended headers the opcode
    /// requires are created with default contents.
    pub fn new(opcode: OpCode) -> Self {
        let bth = Bth {
            opcode,
            ..Bth::default()
        };
        let packet = Packet {
            lrh: Lrh {
                vl: VirtualLane(0),
                lver: 0,
                sl: 0,
                lnh: Lnh::IbaLocal,
                dlid: Lid(0),
                pkt_len: 0,
                slid: Lid(0),
            },
            grh: None,
            bth,
            deth: opcode.service.has_deth().then(Deth::default),
            reth: opcode.operation.has_reth().then(Reth::default),
            aeth: opcode.operation.has_aeth().then(Aeth::default),
            payload: Vec::new(),
            icrc: 0,
            vcrc: 0,
        };
        PacketBuilder { packet }
    }

    /// Source LID.
    pub fn slid(mut self, lid: Lid) -> Self {
        self.packet.lrh.slid = lid;
        self
    }

    /// Destination LID.
    pub fn dlid(mut self, lid: Lid) -> Self {
        self.packet.lrh.dlid = lid;
        self
    }

    /// Service level (QoS class).
    pub fn sl(mut self, sl: u8) -> Self {
        self.packet.lrh.sl = sl & 0x0F;
        self
    }

    /// Virtual lane.
    pub fn vl(mut self, vl: VirtualLane) -> Self {
        self.packet.lrh.vl = vl;
        self
    }

    /// Attach a GRH (switches LNH to global).
    pub fn grh(mut self, grh: Grh) -> Self {
        self.packet.lrh.lnh = Lnh::IbaGlobal;
        self.packet.grh = Some(grh);
        self
    }

    /// Partition key.
    pub fn pkey(mut self, pkey: PKey) -> Self {
        self.packet.bth.pkey = pkey;
        self
    }

    /// Destination QP.
    pub fn dest_qp(mut self, qpn: Qpn) -> Self {
        self.packet.bth.dest_qp = qpn;
        self
    }

    /// Packet sequence number.
    pub fn psn(mut self, psn: Psn) -> Self {
        self.packet.bth.psn = psn;
        self
    }

    /// Q_Key + source QP (panics if the opcode's service has no DETH —
    /// that is a programming error, not input-dependent).
    pub fn qkey(mut self, qkey: QKey, src_qp: Qpn) -> Self {
        let deth = self
            .packet
            .deth
            .as_mut()
            .expect("opcode's transport service carries no DETH");
        deth.qkey = qkey;
        deth.src_qp = src_qp;
        self
    }

    /// RDMA target (panics if the opcode carries no RETH).
    pub fn rdma(mut self, virt_addr: u64, rkey: RKey, dma_len: u32) -> Self {
        let reth = self.packet.reth.as_mut().expect("opcode carries no RETH");
        reth.virt_addr = virt_addr;
        reth.rkey = rkey;
        reth.dma_len = dma_len;
        self
    }

    /// ACK syndrome/MSN (panics if the opcode carries no AETH).
    pub fn ack(mut self, syndrome: u8, msn: u32) -> Self {
        let aeth = self.packet.aeth.as_mut().expect("opcode carries no AETH");
        aeth.syndrome = syndrome;
        aeth.msn = msn & 0x00FF_FFFF;
        self
    }

    /// Payload bytes.
    pub fn payload(mut self, payload: Vec<u8>) -> Self {
        self.packet.payload = payload;
        self
    }

    /// Seal and return the packet.
    pub fn build(mut self) -> Packet {
        self.packet.seal();
        self.packet
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc_packet(payload_len: usize) -> Packet {
        PacketBuilder::new(OpCode::RC_SEND_ONLY)
            .slid(Lid(10))
            .dlid(Lid(20))
            .pkey(PKey(0x8005))
            .dest_qp(Qpn(42))
            .psn(Psn(1000))
            .payload((0..payload_len).map(|i| i as u8).collect())
            .build()
    }

    #[test]
    fn visitor_slices_concatenate_to_icrc_message() {
        for len in [0usize, 1, 3, 4, 100] {
            let pkt = rc_packet(len);
            let mut concat = Vec::new();
            pkt.for_each_icrc_slice(|s| concat.extend_from_slice(s));
            assert_eq!(concat, pkt.icrc_message(), "len {len}");
        }
    }

    #[test]
    fn into_forms_match_allocating_forms_and_reuse_buffers() {
        let mut wire = Vec::new();
        let mut msg = Vec::new();
        for len in [1024usize, 0, 3, 100] {
            // Descending-then-ascending sizes exercise buffer reuse.
            let pkt = rc_packet(len);
            pkt.write_into(&mut wire);
            assert_eq!(wire, pkt.to_bytes(), "wire len {len}");
            pkt.icrc_message_into(&mut msg);
            assert_eq!(msg, pkt.icrc_message(), "msg len {len}");
        }
    }

    #[test]
    fn seal_lengths_then_crcs_equals_seal() {
        let mut a = rc_packet(37);
        a.payload.extend_from_slice(b"more bytes");
        let mut b = a.clone();
        a.seal();
        b.seal_lengths();
        b.icrc = b.compute_icrc();
        b.vcrc = b.compute_vcrc();
        assert_eq!(a, b);
    }

    #[test]
    fn sealed_packet_has_valid_crcs() {
        for len in [0usize, 1, 2, 3, 4, 100, 1024] {
            let pkt = rc_packet(len);
            assert!(pkt.icrc_ok(), "icrc len {len}");
            assert!(pkt.vcrc_ok(), "vcrc len {len}");
            assert_eq!(pkt.wire_len() % 4, 2, "aligned + 2 VCRC bytes, len {len}");
        }
    }

    #[test]
    fn roundtrip_rc() {
        let pkt = rc_packet(100);
        let parsed = Packet::parse(&pkt.to_bytes()).unwrap();
        assert_eq!(parsed, pkt);
    }

    #[test]
    fn parse_into_reuses_and_matches_parse() {
        let mut scratch = Packet::parse(&rc_packet(512).to_bytes()).unwrap();
        let cap = scratch.payload.capacity();
        for len in [256usize, 0, 100, 512] {
            let pkt = rc_packet(len);
            scratch.parse_into(&pkt.to_bytes()).unwrap();
            assert_eq!(scratch, pkt, "len {len}");
            assert_eq!(scratch.payload.capacity(), cap, "len {len}: no realloc");
        }
        // Validation parity with `parse`.
        let mut bytes = rc_packet(8).to_bytes();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        assert!(matches!(
            scratch.parse_into(&bytes),
            Err(ParseError::BadVcrc { .. })
        ));
    }

    #[test]
    fn roundtrip_ud_with_deth() {
        let pkt = PacketBuilder::new(OpCode::UD_SEND_ONLY)
            .slid(Lid(1))
            .dlid(Lid(2))
            .qkey(QKey(0xDEAD_BEEF), Qpn(77))
            .payload(vec![9; 33])
            .build();
        let parsed = Packet::parse(&pkt.to_bytes()).unwrap();
        assert_eq!(parsed, pkt);
        assert_eq!(parsed.deth.unwrap().qkey, QKey(0xDEAD_BEEF));
    }

    #[test]
    fn roundtrip_rdma_write_with_reth() {
        let pkt = PacketBuilder::new(OpCode::RC_RDMA_WRITE_ONLY)
            .slid(Lid(1))
            .dlid(Lid(2))
            .rdma(0x7000_0000_0000, RKey(0xCAFE_F00D), 64)
            .payload(vec![1; 64])
            .build();
        let parsed = Packet::parse(&pkt.to_bytes()).unwrap();
        assert_eq!(parsed, pkt);
        assert_eq!(parsed.reth.unwrap().rkey, RKey(0xCAFE_F00D));
    }

    #[test]
    fn roundtrip_ack_with_aeth() {
        let pkt = PacketBuilder::new(OpCode::RC_ACKNOWLEDGE)
            .slid(Lid(3))
            .dlid(Lid(4))
            .ack(0, 55)
            .build();
        let parsed = Packet::parse(&pkt.to_bytes()).unwrap();
        assert_eq!(parsed.aeth.unwrap().msn, 55);
    }

    #[test]
    fn roundtrip_with_grh() {
        let pkt = PacketBuilder::new(OpCode::RC_SEND_ONLY)
            .slid(Lid(1))
            .dlid(Lid(2))
            .grh(Grh::default())
            .payload(vec![5; 10])
            .build();
        let parsed = Packet::parse(&pkt.to_bytes()).unwrap();
        assert_eq!(parsed, pkt);
        assert!(parsed.grh.is_some());
    }

    #[test]
    fn vl_rewrite_preserves_icrc() {
        // The heart of the ICRC-as-MAC compatibility claim: a switch moving
        // the packet to another VL recomputes only the VCRC.
        let mut pkt = rc_packet(64);
        let icrc_before = pkt.icrc;
        pkt.rewrite_vl(VirtualLane(7));
        assert_eq!(pkt.icrc, icrc_before);
        assert!(pkt.icrc_ok(), "ICRC still valid after VL rewrite");
        assert!(pkt.vcrc_ok(), "VCRC refreshed");
        // And the parsed form agrees.
        let parsed = Packet::parse(&pkt.to_bytes()).unwrap();
        assert_eq!(parsed.icrc, icrc_before);
    }

    #[test]
    fn resv8a_rewrite_preserves_icrc_but_not_vcrc() {
        let mut pkt = rc_packet(64);
        let icrc_before = pkt.compute_icrc();
        pkt.bth.resv8a = 3;
        assert_eq!(
            pkt.compute_icrc(),
            icrc_before,
            "Resv8a is masked from ICRC"
        );
        assert!(
            !pkt.vcrc_ok(),
            "VCRC covers the raw bytes, must be refreshed"
        );
    }

    #[test]
    fn set_auth_tag_keeps_wire_parseable() {
        let mut pkt = rc_packet(32);
        pkt.set_auth_tag(1, 0xA5A5_5A5A);
        let parsed = Packet::parse(&pkt.to_bytes()).unwrap();
        assert_eq!(parsed.bth.resv8a, 1);
        assert_eq!(parsed.icrc, 0xA5A5_5A5A);
        // A legacy receiver checking it as a CRC would reject it...
        assert!(!parsed.icrc_ok());
        // ...but the link layer is perfectly happy.
        assert!(parsed.vcrc_ok());
    }

    #[test]
    fn payload_tamper_breaks_icrc() {
        let pkt = rc_packet(128);
        let mut bytes = pkt.to_bytes();
        // Flip a payload byte and fix up the VCRC so only ICRC catches it.
        let payload_off = 8 + 12;
        bytes[payload_off + 5] ^= 0x40;
        let mut reparsed_fail = Packet::parse(&bytes);
        // VCRC now fails (it covers everything).
        assert!(matches!(reparsed_fail, Err(ParseError::BadVcrc { .. })));
        // Fix the VCRC like an in-path attacker (or switch) would:
        let n = bytes.len();
        let mut c = Crc16::new();
        c.update(&bytes[..n - 2]);
        let vcrc = c.finalize();
        bytes[n - 2..].copy_from_slice(&vcrc.to_be_bytes());
        reparsed_fail = Packet::parse(&bytes);
        let tampered = reparsed_fail.unwrap();
        assert!(!tampered.icrc_ok(), "ICRC must catch the payload change");
    }

    #[test]
    fn pkey_is_covered_by_icrc() {
        let mut pkt = rc_packet(16);
        let before = pkt.compute_icrc();
        pkt.bth.pkey = PKey(0x8099);
        assert_ne!(pkt.compute_icrc(), before, "P_Key is invariant ⇒ covered");
    }

    #[test]
    fn icrc_message_matches_compute_icrc() {
        let pkt = PacketBuilder::new(OpCode::UD_SEND_ONLY)
            .slid(Lid(9))
            .dlid(Lid(8))
            .qkey(QKey(77), Qpn(5))
            .payload(vec![0xEE; 45])
            .build();
        assert_eq!(
            ib_crypto::crc::crc32_ieee(&pkt.icrc_message()),
            pkt.compute_icrc()
        );
    }

    #[test]
    fn parse_rejects_wrong_length() {
        let pkt = rc_packet(20);
        let mut bytes = pkt.to_bytes();
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        assert!(matches!(
            Packet::parse(&bytes),
            Err(ParseError::LengthMismatch { .. })
        ));
        let bytes = pkt.to_bytes();
        assert!(matches!(
            Packet::parse(&bytes[..bytes.len() - 3]),
            Err(ParseError::Truncated { .. })
        ));
    }

    #[test]
    fn parse_rejects_corrupt_vcrc() {
        let pkt = rc_packet(8);
        let mut bytes = pkt.to_bytes();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        assert!(matches!(
            Packet::parse(&bytes),
            Err(ParseError::BadVcrc { .. })
        ));
    }

    #[test]
    fn builder_defaults_are_sane() {
        let pkt = PacketBuilder::new(OpCode::RC_SEND_ONLY).build();
        assert_eq!(pkt.bth.resv8a, 0, "default is plain-ICRC mode");
        assert!(pkt.deth.is_none());
        assert!(pkt.payload.is_empty());
        assert!(pkt.icrc_ok());
    }
}
