//! # ib-packet
//!
//! InfiniBand Architecture (IBA spec vol. 1, rel. 1.1) data-packet wire
//! formats, faithful to the field layouts the paper's ICRC-as-MAC scheme is
//! defined over:
//!
//! ```text
//! | LRH | [GRH] | BTH | [ETHs] | payload | ICRC (4B) | VCRC (2B) |
//! ```
//!
//! * [`lrh::Lrh`] — Local Route Header (8 bytes): VL, service level,
//!   source/destination LIDs, packet length.
//! * [`grh::Grh`] — Global Route Header (40 bytes), optional, for
//!   inter-subnet traffic.
//! * [`bth::Bth`] — Base Transport Header (12 bytes): opcode, **P_Key**,
//!   **Resv8a** (the byte §5.1 of the paper repurposes as the
//!   authentication-function selector), destination QP, PSN.
//! * [`eth`] — Extended Transport Headers: DETH (carries **Q_Key** and
//!   source QP for datagrams), RETH (**R_Key** for RDMA), AETH (acks),
//!   immediate data.
//! * [`packet::Packet`] — a parsed/composable packet with
//!   serialization, parsing, and ICRC/VCRC compute/verify that honours the
//!   spec's invariant-field masking (so the ICRC — and therefore the
//!   authentication tag that replaces it — survives switch traversal).
//!
//! The crate is pure data-plane: no I/O, no simulation. `ib-sim` moves these
//! packets through a fabric; `ib-security` swaps the ICRC for a MAC tag.

pub mod bth;
pub mod error;
pub mod eth;
pub mod grh;
pub mod lrh;
pub mod mad;
pub mod opcode;
pub mod packet;
pub mod types;

pub use bth::Bth;
pub use error::ParseError;
pub use eth::{Aeth, AethKind, Deth, ImmDt, NakCode, Reth};
pub use grh::Grh;
pub use lrh::{Lnh, Lrh};
pub use opcode::{OpCode, Operation, TransportService};
pub use packet::{Packet, PacketBuilder};
pub use types::{Lid, PKey, Psn, QKey, Qpn, RKey, VirtualLane};

/// Maximum Transfer Unit used throughout the paper's testbed (Table 1).
pub const MTU_BYTES: usize = 1024;
