//! Local Route Header (IBA spec §7.7) — 8 bytes.
//!
//! ```text
//! byte 0: VL (4) | LVer (4)
//! byte 1: SL (4) | rsvd (2) | LNH (2)
//! bytes 2-3: DLID
//! byte 4-5: rsvd (5) | PktLen (11)      (length in 4-byte words)
//! bytes 6-7: SLID
//! ```
//!
//! The VL field is *variant* — switches may move a packet to a different
//! virtual lane — so ICRC computation masks it to 1s (spec §7.8.1). That
//! masking is implemented in [`crate::packet`].

use crate::error::ParseError;
use crate::types::{Lid, VirtualLane};

/// LRH next-header code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Lnh {
    /// Raw (no IBA transport header) — unsupported here.
    RawEtherType = 0b00,
    /// Raw IPv6 — unsupported here.
    RawIpv6 = 0b01,
    /// IBA local: BTH follows directly.
    IbaLocal = 0b10,
    /// IBA global: GRH then BTH.
    IbaGlobal = 0b11,
}

/// Local Route Header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lrh {
    /// Virtual lane the packet currently travels on (variant field).
    pub vl: VirtualLane,
    /// Link version (must be 0).
    pub lver: u8,
    /// Service level — the QoS class; the simulator's VL arbitration maps
    /// SL 0 (best-effort) and SL 1+ (realtime) onto VLs.
    pub sl: u8,
    /// Next-header indicator.
    pub lnh: Lnh,
    /// Destination LID.
    pub dlid: Lid,
    /// Packet length in 4-byte words, LRH through ICRC inclusive (VCRC
    /// excluded, per spec §7.7.6).
    pub pkt_len: u16,
    /// Source LID.
    pub slid: Lid,
}

/// Serialized LRH size in bytes.
pub const LRH_LEN: usize = 8;

impl Lrh {
    /// Serialize into an 8-byte array.
    pub fn to_bytes(&self) -> [u8; LRH_LEN] {
        let mut b = [0u8; LRH_LEN];
        b[0] = (self.vl.0 << 4) | (self.lver & 0x0F);
        b[1] = (self.sl << 4) | (self.lnh as u8);
        b[2..4].copy_from_slice(&self.dlid.0.to_be_bytes());
        b[4..6].copy_from_slice(&(self.pkt_len & 0x07FF).to_be_bytes());
        b[6..8].copy_from_slice(&self.slid.0.to_be_bytes());
        b
    }

    /// Parse from the first 8 bytes of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < LRH_LEN {
            return Err(ParseError::Truncated {
                needed: LRH_LEN,
                got: buf.len(),
            });
        }
        let lver = buf[0] & 0x0F;
        if lver != 0 {
            return Err(ParseError::BadLinkVersion(lver));
        }
        let lnh = match buf[1] & 0b11 {
            0b10 => Lnh::IbaLocal,
            0b11 => Lnh::IbaGlobal,
            other => return Err(ParseError::UnsupportedLnh(other)),
        };
        Ok(Lrh {
            vl: VirtualLane::new(buf[0] >> 4),
            lver,
            sl: buf[1] >> 4,
            lnh,
            dlid: Lid(u16::from_be_bytes([buf[2], buf[3]])),
            pkt_len: u16::from_be_bytes([buf[4], buf[5]]) & 0x07FF,
            slid: Lid(u16::from_be_bytes([buf[6], buf[7]])),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Lrh {
        Lrh {
            vl: VirtualLane(3),
            lver: 0,
            sl: 1,
            lnh: Lnh::IbaLocal,
            dlid: Lid(0x1234),
            pkt_len: 0x155,
            slid: Lid(0xBEEF),
        }
    }

    #[test]
    fn roundtrip() {
        let lrh = sample();
        assert_eq!(Lrh::parse(&lrh.to_bytes()).unwrap(), lrh);
    }

    #[test]
    fn roundtrip_global() {
        let mut lrh = sample();
        lrh.lnh = Lnh::IbaGlobal;
        assert_eq!(Lrh::parse(&lrh.to_bytes()).unwrap(), lrh);
    }

    #[test]
    fn field_packing() {
        let b = sample().to_bytes();
        assert_eq!(b[0], 0x30); // VL 3, LVer 0
        assert_eq!(b[1], 0x12); // SL 1, LNH IbaLocal
        assert_eq!(&b[2..4], &[0x12, 0x34]);
        assert_eq!(&b[6..8], &[0xBE, 0xEF]);
    }

    #[test]
    fn pkt_len_masked_to_11_bits() {
        let mut lrh = sample();
        lrh.pkt_len = 0xFFFF;
        let parsed = Lrh::parse(&lrh.to_bytes()).unwrap();
        assert_eq!(parsed.pkt_len, 0x07FF);
    }

    #[test]
    fn rejects_bad_link_version() {
        let mut b = sample().to_bytes();
        b[0] |= 0x01;
        assert_eq!(Lrh::parse(&b), Err(ParseError::BadLinkVersion(1)));
    }

    #[test]
    fn rejects_raw_lnh() {
        let mut b = sample().to_bytes();
        b[1] &= 0xF0; // LNH = RawEtherType
        assert_eq!(Lrh::parse(&b), Err(ParseError::UnsupportedLnh(0)));
    }

    #[test]
    fn rejects_truncated() {
        assert!(matches!(
            Lrh::parse(&[0u8; 7]),
            Err(ParseError::Truncated { needed: 8, got: 7 })
        ));
    }
}
