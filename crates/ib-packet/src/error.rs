//! Parse and validation errors for IBA packets.

use std::fmt;

/// Why a byte buffer failed to parse as an IBA data packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// Buffer shorter than the headers + CRCs it claims to contain.
    Truncated { needed: usize, got: usize },
    /// LRH link version other than 0.
    BadLinkVersion(u8),
    /// BTH transport version other than 0.
    BadTransportVersion(u8),
    /// LRH `LNH` names a next-header layout this crate does not model
    /// (raw Ethertype / raw IPv6).
    UnsupportedLnh(u8),
    /// Unknown BTH opcode byte.
    UnknownOpCode(u8),
    /// LRH `PktLen` disagrees with the buffer length.
    LengthMismatch {
        header_words: u16,
        actual_words: usize,
    },
    /// VCRC check failed (link-level corruption).
    BadVcrc { expected: u16, got: u16 },
    /// ICRC check failed — corruption, or an authentication tag checked as
    /// a CRC (which is exactly what a non-upgraded receiver would see).
    BadIcrc { expected: u32, got: u32 },
    /// Packet exceeds the configured MTU.
    TooLarge { len: usize, mtu: usize },
    /// Padding count inconsistent with payload length.
    BadPadCount { pad: u8, payload_len: usize },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated { needed, got } => {
                write!(f, "truncated packet: need {needed} bytes, got {got}")
            }
            ParseError::BadLinkVersion(v) => write!(f, "unsupported LRH link version {v}"),
            ParseError::BadTransportVersion(v) => {
                write!(f, "unsupported BTH transport version {v}")
            }
            ParseError::UnsupportedLnh(v) => write!(f, "unsupported LRH next-header code {v}"),
            ParseError::UnknownOpCode(v) => write!(f, "unknown BTH opcode {v:#04x}"),
            ParseError::LengthMismatch {
                header_words,
                actual_words,
            } => write!(
                f,
                "LRH PktLen {header_words} words but buffer has {actual_words} words"
            ),
            ParseError::BadVcrc { expected, got } => {
                write!(
                    f,
                    "VCRC mismatch: computed {expected:#06x}, packet has {got:#06x}"
                )
            }
            ParseError::BadIcrc { expected, got } => {
                write!(
                    f,
                    "ICRC mismatch: computed {expected:#010x}, packet has {got:#010x}"
                )
            }
            ParseError::TooLarge { len, mtu } => {
                write!(f, "payload {len} bytes exceeds MTU {mtu}")
            }
            ParseError::BadPadCount { pad, payload_len } => {
                write!(
                    f,
                    "pad count {pad} inconsistent with payload length {payload_len}"
                )
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ParseError::Truncated {
            needed: 26,
            got: 10,
        };
        assert!(e.to_string().contains("26"));
        let e = ParseError::BadIcrc {
            expected: 1,
            got: 2,
        };
        assert!(e.to_string().contains("ICRC"));
    }
}
