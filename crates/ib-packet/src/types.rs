//! Strongly-typed identifiers for the IBA fields the security mechanisms
//! key on. Newtypes prevent the classic bug of passing a Q_Key where a
//! P_Key is expected — the exact confusion the paper's Table 3 shows an
//! attacker exploiting.

use std::fmt;

/// Local Identifier — a 16-bit per-port address assigned by the Subnet
/// Manager; the LRH routes on these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Lid(pub u16);

impl fmt::Display for Lid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LID:{:#06x}", self.0)
    }
}

/// Partition Key — 16 bits: a 15-bit key base plus a 1-bit membership type
/// (1 = full member, 0 = limited member), per IBA spec §10.9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PKey(pub u16);

impl PKey {
    /// The default partition key every port starts in (full membership).
    pub const DEFAULT: PKey = PKey(0xFFFF);
    /// Invalid/reserved P_Key values per spec: base 0 is reserved.
    pub const INVALID: PKey = PKey(0x0000);

    /// 15-bit key base (ignores the membership bit). Two P_Keys *match*
    /// when their bases are equal and at least one is a full member.
    pub fn base(self) -> u16 {
        self.0 & 0x7FFF
    }

    /// Whether the membership bit marks a full member.
    pub fn is_full_member(self) -> bool {
        self.0 & 0x8000 != 0
    }

    /// IBA P_Key matching rule (spec §10.9.3): bases equal, and not both
    /// limited members.
    pub fn matches(self, other: PKey) -> bool {
        self.base() == other.base() && (self.is_full_member() || other.is_full_member())
    }
}

impl fmt::Display for PKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P_Key:{:#06x}", self.0)
    }
}

/// Queue Pair Number — 24 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Qpn(pub u32);

impl Qpn {
    /// Construct, masking to 24 bits.
    pub fn new(v: u32) -> Self {
        Qpn(v & 0x00FF_FFFF)
    }
}

impl fmt::Display for Qpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QP{}", self.0)
    }
}

/// Queue Key — 32 bits, carried in the DETH of datagram packets; §4.1 of
/// the paper: its plaintext presence is what "authenticates" UD packets in
/// stock IBA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct QKey(pub u32);

impl fmt::Display for QKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q_Key:{:#010x}", self.0)
    }
}

/// Remote memory key — 32 bits, carried in the RETH; grants RDMA access to
/// a registered memory region with no destination-QP intervention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RKey(pub u32);

impl fmt::Display for RKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R_Key:{:#010x}", self.0)
    }
}

/// Packet Sequence Number — 24 bits, monotonically increasing per
/// connection. Doubles as the MAC nonce in the authentication layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Psn(pub u32);

impl Psn {
    /// Construct, masking to 24 bits.
    pub fn new(v: u32) -> Self {
        Psn(v & 0x00FF_FFFF)
    }

    /// Next PSN, wrapping at 2^24.
    pub fn next(self) -> Psn {
        Psn((self.0 + 1) & 0x00FF_FFFF)
    }
}

/// Virtual lane index, 0–15. VL15 is reserved for subnet management
/// traffic; data VLs are 0–14 (Table 1: 16 VLs per physical link).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VirtualLane(pub u8);

impl VirtualLane {
    /// The management VL (trap MADs travel here; never blocked by data
    /// congestion).
    pub const MANAGEMENT: VirtualLane = VirtualLane(15);

    /// Construct, masking to 4 bits.
    pub fn new(v: u8) -> Self {
        VirtualLane(v & 0x0F)
    }

    /// Whether this is the dedicated subnet-management lane.
    pub fn is_management(self) -> bool {
        self.0 == 15
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pkey_matching_rules() {
        let full_a = PKey(0x8001);
        let limited_a = PKey(0x0001);
        let full_b = PKey(0x8002);
        // Same base, at least one full: match.
        assert!(full_a.matches(limited_a));
        assert!(limited_a.matches(full_a));
        assert!(full_a.matches(full_a));
        // Both limited: no match even with equal bases.
        assert!(!limited_a.matches(limited_a));
        // Different base: never.
        assert!(!full_a.matches(full_b));
    }

    #[test]
    fn pkey_base_and_membership() {
        assert_eq!(PKey(0x8001).base(), 1);
        assert!(PKey(0x8001).is_full_member());
        assert!(!PKey(0x0001).is_full_member());
        assert_eq!(PKey::DEFAULT.base(), 0x7FFF);
        assert!(PKey::DEFAULT.is_full_member());
    }

    #[test]
    fn psn_wraps_at_24_bits() {
        assert_eq!(Psn::new(0xFFFF_FFFF).0, 0x00FF_FFFF);
        assert_eq!(Psn(0x00FF_FFFF).next(), Psn(0));
        assert_eq!(Psn(5).next(), Psn(6));
    }

    #[test]
    fn qpn_masks_to_24_bits() {
        assert_eq!(Qpn::new(0x0100_0001).0, 1);
    }

    #[test]
    fn vl_constants() {
        assert!(VirtualLane::MANAGEMENT.is_management());
        assert!(!VirtualLane(0).is_management());
        assert_eq!(VirtualLane::new(0x1F).0, 0x0F);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Lid(0x10).to_string(), "LID:0x0010");
        assert_eq!(Qpn(7).to_string(), "QP7");
        assert_eq!(PKey(0xFFFF).to_string(), "P_Key:0xffff");
    }
}
