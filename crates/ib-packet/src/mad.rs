//! Management Datagram (MAD) wire format — IBA spec §13.4.
//!
//! MADs are fixed 256-byte payloads carried in UD packets to QP0 (subnet
//! management, on VL15) or QP1 (general services). The paper's SIF control
//! loop rides on MADs twice: the P_Key-violation **trap** (a SubnTrap MAD
//! from the detecting port to the SM) and the SM's **SubnSet** programming
//! the switch's Invalid_P_Key_Table.
//!
//! Layout of the common header (24 bytes):
//!
//! ```text
//! byte 0:      BaseVersion (1)
//! byte 1:      MgmtClass
//! byte 2:      ClassVersion (1)
//! byte 3:      R (1) | Method (7)
//! bytes 4-5:   Status
//! bytes 6-7:   ClassSpecific
//! bytes 8-15:  TransactionID
//! bytes 16-17: AttributeID
//! bytes 18-19: reserved
//! bytes 20-23: AttributeModifier
//! ```

use crate::error::ParseError;
use crate::types::{Lid, PKey};

/// Total MAD size on the wire (spec-mandated).
pub const MAD_LEN: usize = 256;
/// Common MAD header size.
pub const MAD_HEADER_LEN: usize = 24;

/// Management classes this reproduction uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MgmtClass {
    /// LID-routed subnet management (SMPs to QP0).
    SubnLid = 0x01,
    /// Subnet administration (via QP1).
    SubnAdm = 0x03,
}

/// MAD methods (spec table 97 subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Method {
    Get = 0x01,
    Set = 0x02,
    GetResp = 0x81,
    Trap = 0x05,
    TrapRepress = 0x07,
}

impl Method {
    fn from_byte(b: u8) -> Option<Method> {
        Some(match b {
            0x01 => Method::Get,
            0x02 => Method::Set,
            0x81 => Method::GetResp,
            0x05 => Method::Trap,
            0x07 => Method::TrapRepress,
            _ => return None,
        })
    }
}

/// Attribute IDs (spec table 99 subset + one vendor attribute for the
/// paper's extension).
pub mod attr {
    /// Notice (traps carry a Notice attribute).
    pub const NOTICE: u16 = 0x0002;
    /// P_KeyTable.
    pub const P_KEY_TABLE: u16 = 0x0016;
    /// Vendor-range attribute for programming the Invalid_P_Key_Table —
    /// the paper's SIF needs a new SMP, which the spec's vendor space
    /// (0xFF00-0xFFFF) accommodates without protocol changes.
    pub const INVALID_P_KEY_TABLE: u16 = 0xFF10;

    // 0xFF20-0xFF2F: the replicated-SM key plane (`ib-sm`). Like SIF's
    // programming SMP these live in the vendor space, so the protocol is
    // pure MADs — no new wire formats.

    /// Leader → replicas liveness beacon, carrying `(term, leader id)`.
    pub const SM_HEARTBEAT: u16 = 0xFF20;
    /// Replica → replicas leadership claim for a term (deterministic
    /// ranked election).
    pub const SM_LEADER_CLAIM: u16 = 0xFF21;
    /// Leader → follower replica: mirror an `(epoch, partition key)`
    /// version (Set) / follower ack (GetResp).
    pub const SM_KEY_REPLICATE: u16 = 0xFF22;
    /// Leader → CA: install a new key epoch, secret sealed in a toy-RSA
    /// key envelope (Set) / CA ack (GetResp).
    pub const SM_KEY_UPDATE: u16 = 0xFF23;
}

/// A parsed MAD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mad {
    pub mgmt_class: MgmtClass,
    pub method: Method,
    pub status: u16,
    pub transaction_id: u64,
    pub attribute_id: u16,
    pub attribute_modifier: u32,
    /// 232 bytes of class-specific payload.
    pub data: [u8; MAD_LEN - MAD_HEADER_LEN],
}

impl Default for Mad {
    fn default() -> Self {
        Mad {
            mgmt_class: MgmtClass::SubnLid,
            method: Method::Get,
            status: 0,
            transaction_id: 0,
            attribute_id: 0,
            attribute_modifier: 0,
            data: [0u8; MAD_LEN - MAD_HEADER_LEN],
        }
    }
}

impl Mad {
    /// Serialize to the 256-byte wire form.
    pub fn to_bytes(&self) -> [u8; MAD_LEN] {
        let mut b = [0u8; MAD_LEN];
        b[0] = 1; // BaseVersion
        b[1] = self.mgmt_class as u8;
        b[2] = 1; // ClassVersion
        b[3] = self.method as u8;
        b[4..6].copy_from_slice(&self.status.to_be_bytes());
        b[8..16].copy_from_slice(&self.transaction_id.to_be_bytes());
        b[16..18].copy_from_slice(&self.attribute_id.to_be_bytes());
        b[20..24].copy_from_slice(&self.attribute_modifier.to_be_bytes());
        b[MAD_HEADER_LEN..].copy_from_slice(&self.data);
        b
    }

    /// Parse from wire bytes.
    pub fn parse(buf: &[u8]) -> Result<Mad, ParseError> {
        if buf.len() < MAD_LEN {
            return Err(ParseError::Truncated {
                needed: MAD_LEN,
                got: buf.len(),
            });
        }
        let mgmt_class = match buf[1] {
            0x01 => MgmtClass::SubnLid,
            0x03 => MgmtClass::SubnAdm,
            other => return Err(ParseError::UnknownOpCode(other)),
        };
        let method = Method::from_byte(buf[3]).ok_or(ParseError::UnknownOpCode(buf[3]))?;
        let mut data = [0u8; MAD_LEN - MAD_HEADER_LEN];
        data.copy_from_slice(&buf[MAD_HEADER_LEN..MAD_LEN]);
        Ok(Mad {
            mgmt_class,
            method,
            status: u16::from_be_bytes([buf[4], buf[5]]),
            transaction_id: u64::from_be_bytes(buf[8..16].try_into().unwrap()),
            attribute_id: u16::from_be_bytes([buf[16], buf[17]]),
            attribute_modifier: u32::from_be_bytes(buf[20..24].try_into().unwrap()),
            data,
        })
    }

    /// Build the P_Key-violation trap MAD (Notice attribute): reporter LID,
    /// offending P_Key, and the violator's source LID packed into the data
    /// area in the style of the spec's Notice DataDetails.
    pub fn pkey_violation_trap(
        reporter: Lid,
        bad_pkey: PKey,
        violator: Lid,
        transaction_id: u64,
    ) -> Mad {
        let mut mad = Mad {
            mgmt_class: MgmtClass::SubnLid,
            method: Method::Trap,
            attribute_id: attr::NOTICE,
            transaction_id,
            ..Mad::default()
        };
        // Notice DataDetails: trap number 257/258 carries LID1, LID2, Key.
        mad.data[0..2].copy_from_slice(&257u16.to_be_bytes()); // trap number
        mad.data[2..4].copy_from_slice(&reporter.0.to_be_bytes());
        mad.data[4..6].copy_from_slice(&violator.0.to_be_bytes());
        mad.data[6..8].copy_from_slice(&bad_pkey.0.to_be_bytes());
        mad
    }

    /// Decode a P_Key-violation trap built by
    /// [`Mad::pkey_violation_trap`]: `(reporter, violator, bad_pkey)`.
    pub fn decode_pkey_violation(&self) -> Option<(Lid, Lid, PKey)> {
        if self.method != Method::Trap || self.attribute_id != attr::NOTICE {
            return None;
        }
        let trap_number = u16::from_be_bytes([self.data[0], self.data[1]]);
        if trap_number != 257 {
            return None;
        }
        Some((
            Lid(u16::from_be_bytes([self.data[2], self.data[3]])),
            Lid(u16::from_be_bytes([self.data[4], self.data[5]])),
            PKey(u16::from_be_bytes([self.data[6], self.data[7]])),
        ))
    }

    /// Build the SM→switch SubnSet MAD programming one Invalid_P_Key_Table
    /// entry on `port` (the paper's SIF activation message).
    pub fn program_invalid_pkey(port: u8, pkey: PKey, transaction_id: u64) -> Mad {
        let mut mad = Mad {
            mgmt_class: MgmtClass::SubnLid,
            method: Method::Set,
            attribute_id: attr::INVALID_P_KEY_TABLE,
            attribute_modifier: port as u32,
            transaction_id,
            ..Mad::default()
        };
        mad.data[0..2].copy_from_slice(&pkey.0.to_be_bytes());
        mad
    }

    /// Decode a SIF programming MAD: `(port, pkey)`.
    pub fn decode_program_invalid_pkey(&self) -> Option<(u8, PKey)> {
        if self.method != Method::Set || self.attribute_id != attr::INVALID_P_KEY_TABLE {
            return None;
        }
        Some((
            self.attribute_modifier as u8,
            PKey(u16::from_be_bytes([self.data[0], self.data[1]])),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_default() {
        let mad = Mad::default();
        let parsed = Mad::parse(&mad.to_bytes()).unwrap();
        assert_eq!(parsed, mad);
    }

    #[test]
    fn trap_roundtrip_and_decode() {
        let mad = Mad::pkey_violation_trap(Lid(5), PKey(0x8666), Lid(9), 42);
        let wire = mad.to_bytes();
        assert_eq!(wire.len(), MAD_LEN);
        let parsed = Mad::parse(&wire).unwrap();
        assert_eq!(parsed.method, Method::Trap);
        assert_eq!(parsed.transaction_id, 42);
        let (reporter, violator, pkey) = parsed.decode_pkey_violation().unwrap();
        assert_eq!(reporter, Lid(5));
        assert_eq!(violator, Lid(9));
        assert_eq!(pkey, PKey(0x8666));
    }

    #[test]
    fn program_roundtrip_and_decode() {
        let mad = Mad::program_invalid_pkey(4, PKey(0x8666), 7);
        let parsed = Mad::parse(&mad.to_bytes()).unwrap();
        let (port, pkey) = parsed.decode_program_invalid_pkey().unwrap();
        assert_eq!(port, 4);
        assert_eq!(pkey, PKey(0x8666));
        assert!(parsed.decode_pkey_violation().is_none(), "not a trap");
    }

    #[test]
    fn decode_rejects_wrong_kinds() {
        let trap = Mad::pkey_violation_trap(Lid(1), PKey(2), Lid(3), 4);
        assert!(trap.decode_program_invalid_pkey().is_none());
        let get = Mad::default();
        assert!(get.decode_pkey_violation().is_none());
    }

    #[test]
    fn parse_rejects_truncated_and_unknown() {
        assert!(matches!(
            Mad::parse(&[0u8; 255]),
            Err(ParseError::Truncated {
                needed: 256,
                got: 255
            })
        ));
        let mut bytes = Mad::default().to_bytes();
        bytes[1] = 0x42; // bogus class
        assert!(Mad::parse(&bytes).is_err());
        let mut bytes = Mad::default().to_bytes();
        bytes[3] = 0x7F; // bogus method
        assert!(Mad::parse(&bytes).is_err());
    }

    #[test]
    fn header_field_packing() {
        let mad = Mad {
            status: 0x1234,
            transaction_id: 0x0102_0304_0506_0708,
            attribute_id: 0xFF10,
            attribute_modifier: 0xAABB_CCDD,
            ..Mad::default()
        };
        let b = mad.to_bytes();
        assert_eq!(b[0], 1);
        assert_eq!(&b[4..6], &[0x12, 0x34]);
        assert_eq!(&b[8..16], &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(&b[16..18], &[0xFF, 0x10]);
        assert_eq!(&b[20..24], &[0xAA, 0xBB, 0xCC, 0xDD]);
    }
}
