//! Base Transport Header (IBA spec §9.2) — 12 bytes, present in every IBA
//! transport packet.
//!
//! ```text
//! byte 0:     OpCode
//! byte 1:     SE (1) | M (1) | PadCnt (2) | TVer (4)
//! bytes 2-3:  P_Key
//! byte 4:     Resv8a    ←  the paper's authentication-function selector
//! bytes 5-7:  DestQP (24)
//! byte 8:     A (1) | Resv7b (7)  ←  Resv7b carries the key-epoch id
//! bytes 9-11: PSN (24)
//! ```
//!
//! `Resv8a` is a *variant* field per the spec (masked in the ICRC
//! computation) — which is exactly why §5.1 of the paper can repurpose it as
//! the selector without perturbing the ICRC/AT itself: the selector travels
//! outside the authenticated coverage, while tampering with it merely makes
//! verification fail.
//!
//! `Resv7b` (the low 7 bits of byte 8) is an *invariant* field — covered by
//! the ICRC/MAC — so the key-management plane uses it as the **key-epoch
//! id**: the low 7 bits of the epoch the sender's MAC key belongs to. The
//! receiver reconstructs the full epoch against its own current one and
//! picks the matching key; tampering with the epoch in flight changes the
//! authenticated message and fails verification. Epoch 0 keeps the byte
//! bit-identical to pre-epoch traffic.

use crate::error::ParseError;
use crate::opcode::OpCode;
use crate::types::{PKey, Psn, Qpn};

/// Base Transport Header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bth {
    /// Operation: service class + operation code.
    pub opcode: OpCode,
    /// Solicited event.
    pub se: bool,
    /// MigReq state.
    pub migreq: bool,
    /// Payload pad count (0–3 bytes) so payload+pad is 4-byte aligned.
    pub pad_count: u8,
    /// Transport header version (must be 0).
    pub tver: u8,
    /// Partition key.
    pub pkey: PKey,
    /// Reserved byte 8a — used by the authentication scheme as the
    /// algorithm selector (0 = plain ICRC).
    pub resv8a: u8,
    /// Destination queue pair.
    pub dest_qp: Qpn,
    /// Acknowledge-request bit.
    pub ack_req: bool,
    /// Key-epoch id (7 bits, spec `Resv7b`): low bits of the epoch the
    /// sender's MAC key belongs to. Invariant — covered by the ICRC/MAC.
    pub key_epoch: u8,
    /// Packet sequence number.
    pub psn: Psn,
}

/// Mask for the 7-bit on-wire key-epoch id in BTH byte 8.
pub const KEY_EPOCH_WIRE_MASK: u8 = 0x7F;

/// Serialized BTH size in bytes.
pub const BTH_LEN: usize = 12;
/// Offset of the Resv8a byte within the BTH (for ICRC masking).
pub const BTH_RESV8A_OFFSET: usize = 4;

impl Bth {
    /// Serialize into a 12-byte array.
    pub fn to_bytes(&self) -> [u8; BTH_LEN] {
        let mut b = [0u8; BTH_LEN];
        b[0] = self.opcode.to_byte();
        b[1] = ((self.se as u8) << 7)
            | ((self.migreq as u8) << 6)
            | ((self.pad_count & 0b11) << 4)
            | (self.tver & 0x0F);
        b[2..4].copy_from_slice(&self.pkey.0.to_be_bytes());
        b[4] = self.resv8a;
        let dqp = self.dest_qp.0.to_be_bytes();
        b[5..8].copy_from_slice(&dqp[1..4]);
        b[8] = ((self.ack_req as u8) << 7) | (self.key_epoch & KEY_EPOCH_WIRE_MASK);
        let psn = self.psn.0.to_be_bytes();
        b[9..12].copy_from_slice(&psn[1..4]);
        b
    }

    /// Parse from the first 12 bytes of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < BTH_LEN {
            return Err(ParseError::Truncated {
                needed: BTH_LEN,
                got: buf.len(),
            });
        }
        let opcode = OpCode::from_byte(buf[0]).ok_or(ParseError::UnknownOpCode(buf[0]))?;
        let tver = buf[1] & 0x0F;
        if tver != 0 {
            return Err(ParseError::BadTransportVersion(tver));
        }
        Ok(Bth {
            opcode,
            se: buf[1] & 0x80 != 0,
            migreq: buf[1] & 0x40 != 0,
            pad_count: (buf[1] >> 4) & 0b11,
            tver,
            pkey: PKey(u16::from_be_bytes([buf[2], buf[3]])),
            resv8a: buf[4],
            dest_qp: Qpn(u32::from_be_bytes([0, buf[5], buf[6], buf[7]])),
            ack_req: buf[8] & 0x80 != 0,
            key_epoch: buf[8] & KEY_EPOCH_WIRE_MASK,
            psn: Psn(u32::from_be_bytes([0, buf[9], buf[10], buf[11]])),
        })
    }
}

impl Default for Bth {
    fn default() -> Self {
        Bth {
            opcode: OpCode::RC_SEND_ONLY,
            se: false,
            migreq: false,
            pad_count: 0,
            tver: 0,
            pkey: PKey::DEFAULT,
            resv8a: 0,
            dest_qp: Qpn(0),
            ack_req: false,
            key_epoch: 0,
            psn: Psn(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Bth {
        Bth {
            opcode: OpCode::UD_SEND_ONLY,
            se: true,
            migreq: false,
            pad_count: 3,
            tver: 0,
            pkey: PKey(0x8001),
            resv8a: 1, // UMAC selector
            dest_qp: Qpn(0x00AB_CDEF),
            ack_req: true,
            key_epoch: 0,
            psn: Psn(0x123456),
        }
    }

    #[test]
    fn roundtrip() {
        let bth = sample();
        assert_eq!(Bth::parse(&bth.to_bytes()).unwrap(), bth);
    }

    #[test]
    fn resv8a_is_byte_4() {
        let b = sample().to_bytes();
        assert_eq!(b[BTH_RESV8A_OFFSET], 1);
    }

    #[test]
    fn field_packing() {
        let b = sample().to_bytes();
        assert_eq!(b[0], 0x64); // UD SendOnly
        assert_eq!(b[1], 0xB0); // SE=1, M=0, Pad=3, TVer=0
        assert_eq!(&b[2..4], &[0x80, 0x01]);
        assert_eq!(&b[5..8], &[0xAB, 0xCD, 0xEF]);
        assert_eq!(b[8], 0x80);
        assert_eq!(&b[9..12], &[0x12, 0x34, 0x56]);
    }

    #[test]
    fn rejects_unknown_opcode() {
        let mut b = sample().to_bytes();
        b[0] = 0xFF;
        assert_eq!(Bth::parse(&b), Err(ParseError::UnknownOpCode(0xFF)));
    }

    #[test]
    fn rejects_bad_tver() {
        let mut b = sample().to_bytes();
        b[1] |= 0x01;
        assert_eq!(Bth::parse(&b), Err(ParseError::BadTransportVersion(1)));
    }

    #[test]
    fn default_is_icrc_mode() {
        assert_eq!(Bth::default().resv8a, 0);
        assert_eq!(Bth::default().key_epoch, 0, "epoch 0 = pre-epoch wire");
    }

    #[test]
    fn key_epoch_shares_byte8_with_ack_bit() {
        let mut bth = sample();
        bth.key_epoch = 0x55;
        let b = bth.to_bytes();
        assert_eq!(b[8], 0x80 | 0x55, "A bit high, epoch in Resv7b");
        let parsed = Bth::parse(&b).unwrap();
        assert!(parsed.ack_req);
        assert_eq!(parsed.key_epoch, 0x55);

        bth.ack_req = false;
        bth.key_epoch = 0x7F;
        let parsed = Bth::parse(&bth.to_bytes()).unwrap();
        assert!(!parsed.ack_req);
        assert_eq!(parsed.key_epoch, 0x7F);
    }

    #[test]
    fn key_epoch_truncated_to_seven_bits() {
        let mut bth = sample();
        bth.ack_req = false;
        bth.key_epoch = 0xFF; // bit 7 must not leak into the A bit
        let b = bth.to_bytes();
        assert_eq!(b[8], 0x7F);
        assert!(!Bth::parse(&b).unwrap().ack_req);
    }
}
