//! BTH opcodes (IBA spec §9.2, table 35 subset).
//!
//! The high 3 bits select the transport service class; the low 5 bits the
//! operation. We model the services the paper's key-management section
//! distinguishes: Reliable Connection (connection-oriented, no Q_Key) and
//! Unreliable Datagram (Q_Key in a DETH), plus the acknowledgement packets
//! RC generates.

/// IBA transport service classes (BTH opcode bits 7-5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TransportService {
    /// Reliable Connection — two QPs bound to each other; packets carry
    /// only a P_Key (paper §4.3: "no Q_Key is included here").
    ReliableConnection = 0b000,
    /// Unreliable Connection.
    UnreliableConnection = 0b101,
    /// Reliable Datagram.
    ReliableDatagram = 0b010,
    /// Unreliable Datagram — packets carry Q_Key + source QP in a DETH.
    UnreliableDatagram = 0b011,
}

impl TransportService {
    /// Whether packets of this service carry a DETH (and therefore a Q_Key).
    pub fn has_deth(self) -> bool {
        matches!(
            self,
            TransportService::UnreliableDatagram | TransportService::ReliableDatagram
        )
    }

    /// Whether this service is connection-oriented (QPs exclusively bound).
    pub fn is_connected(self) -> bool {
        matches!(
            self,
            TransportService::ReliableConnection | TransportService::UnreliableConnection
        )
    }
}

/// Operations within a service (BTH opcode bits 4-0, subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Operation {
    SendFirst = 0x00,
    SendMiddle = 0x01,
    SendLast = 0x02,
    SendOnly = 0x04,
    RdmaWriteFirst = 0x06,
    RdmaWriteMiddle = 0x07,
    RdmaWriteLast = 0x08,
    RdmaWriteOnly = 0x0A,
    RdmaReadRequest = 0x0C,
    RdmaReadResponseFirst = 0x0D,
    RdmaReadResponseMiddle = 0x0E,
    RdmaReadResponseLast = 0x0F,
    RdmaReadResponseOnly = 0x10,
    Acknowledge = 0x11,
}

impl Operation {
    fn from_bits(v: u8) -> Option<Self> {
        Some(match v {
            0x00 => Operation::SendFirst,
            0x01 => Operation::SendMiddle,
            0x02 => Operation::SendLast,
            0x04 => Operation::SendOnly,
            0x06 => Operation::RdmaWriteFirst,
            0x07 => Operation::RdmaWriteMiddle,
            0x08 => Operation::RdmaWriteLast,
            0x0A => Operation::RdmaWriteOnly,
            0x0C => Operation::RdmaReadRequest,
            0x0D => Operation::RdmaReadResponseFirst,
            0x0E => Operation::RdmaReadResponseMiddle,
            0x0F => Operation::RdmaReadResponseLast,
            0x10 => Operation::RdmaReadResponseOnly,
            0x11 => Operation::Acknowledge,
            _ => return None,
        })
    }

    /// Whether packets with this operation carry a RETH (RDMA address +
    /// R_Key).
    pub fn has_reth(self) -> bool {
        matches!(
            self,
            Operation::RdmaWriteFirst | Operation::RdmaWriteOnly | Operation::RdmaReadRequest
        )
    }

    /// Whether packets with this operation carry an AETH (ack syndrome).
    /// Per spec table 35 a read-response *Middle* carries none — only the
    /// First/Last/Only response packets acknowledge.
    pub fn has_aeth(self) -> bool {
        matches!(
            self,
            Operation::Acknowledge
                | Operation::RdmaReadResponseFirst
                | Operation::RdmaReadResponseLast
                | Operation::RdmaReadResponseOnly
        )
    }

    /// Whether this operation carries a data payload.
    pub fn has_payload(self) -> bool {
        !matches!(self, Operation::Acknowledge | Operation::RdmaReadRequest)
    }
}

/// A combined (service, operation) opcode as carried in BTH byte 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpCode {
    pub service: TransportService,
    pub operation: Operation,
}

impl OpCode {
    /// Reliable-connection send-only — the workhorse of the simulations.
    pub const RC_SEND_ONLY: OpCode = OpCode {
        service: TransportService::ReliableConnection,
        operation: Operation::SendOnly,
    };
    /// Unreliable-datagram send-only (carries DETH with Q_Key).
    pub const UD_SEND_ONLY: OpCode = OpCode {
        service: TransportService::UnreliableDatagram,
        operation: Operation::SendOnly,
    };
    /// RC RDMA write-only (carries RETH with R_Key).
    pub const RC_RDMA_WRITE_ONLY: OpCode = OpCode {
        service: TransportService::ReliableConnection,
        operation: Operation::RdmaWriteOnly,
    };
    /// RC RDMA read request.
    pub const RC_RDMA_READ_REQUEST: OpCode = OpCode {
        service: TransportService::ReliableConnection,
        operation: Operation::RdmaReadRequest,
    };
    /// RC acknowledge.
    pub const RC_ACKNOWLEDGE: OpCode = OpCode {
        service: TransportService::ReliableConnection,
        operation: Operation::Acknowledge,
    };

    /// Encode to the BTH opcode byte.
    pub fn to_byte(self) -> u8 {
        ((self.service as u8) << 5) | (self.operation as u8)
    }

    /// Decode from the BTH opcode byte.
    pub fn from_byte(b: u8) -> Option<Self> {
        let service = match b >> 5 {
            0b000 => TransportService::ReliableConnection,
            0b101 => TransportService::UnreliableConnection,
            0b010 => TransportService::ReliableDatagram,
            0b011 => TransportService::UnreliableDatagram,
            _ => return None,
        };
        let operation = Operation::from_bits(b & 0x1F)?;
        // UD supports only sends (spec table 38).
        if service == TransportService::UnreliableDatagram
            && !matches!(
                operation,
                Operation::SendFirst
                    | Operation::SendOnly
                    | Operation::SendMiddle
                    | Operation::SendLast
            )
        {
            return None;
        }
        Some(OpCode { service, operation })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_common_opcodes() {
        for op in [
            OpCode::RC_SEND_ONLY,
            OpCode::UD_SEND_ONLY,
            OpCode::RC_RDMA_WRITE_ONLY,
            OpCode::RC_RDMA_READ_REQUEST,
            OpCode::RC_ACKNOWLEDGE,
        ] {
            assert_eq!(OpCode::from_byte(op.to_byte()), Some(op));
        }
    }

    #[test]
    fn rc_send_only_is_0x04() {
        assert_eq!(OpCode::RC_SEND_ONLY.to_byte(), 0x04);
        assert_eq!(OpCode::UD_SEND_ONLY.to_byte(), 0x64);
    }

    #[test]
    fn ud_rdma_rejected() {
        // 0b011_01010 = UD RdmaWriteOnly: not a legal IBA opcode.
        assert_eq!(OpCode::from_byte(0b0110_1010), None);
    }

    #[test]
    fn unknown_service_rejected() {
        assert_eq!(OpCode::from_byte(0b1110_0100), None);
    }

    #[test]
    fn roundtrip_all_opcode_bytes() {
        // Every byte either decodes to an opcode that re-encodes to the
        // same byte, or is rejected — no aliasing, no lossy decode.
        let mut decoded = 0;
        for b in 0u8..=255 {
            if let Some(op) = OpCode::from_byte(b) {
                assert_eq!(op.to_byte(), b, "byte {b:#04x} must re-encode");
                assert_eq!(OpCode::from_byte(op.to_byte()), Some(op));
                decoded += 1;
            }
        }
        // RC + UC + RD carry all 14 operations; UD only the 4 sends.
        assert_eq!(decoded, 3 * 14 + 4);
    }

    #[test]
    fn read_response_middle_header_flags() {
        let op = Operation::RdmaReadResponseMiddle;
        assert_eq!(op as u8, 0x0E);
        assert!(op.has_payload(), "middle response carries data");
        assert!(!op.has_aeth(), "only First/Last/Only responses carry AETH");
        assert!(!op.has_reth());
    }

    #[test]
    fn header_presence_flags() {
        assert!(TransportService::UnreliableDatagram.has_deth());
        assert!(!TransportService::ReliableConnection.has_deth());
        assert!(TransportService::ReliableConnection.is_connected());
        assert!(Operation::RdmaWriteOnly.has_reth());
        assert!(Operation::Acknowledge.has_aeth());
        assert!(!Operation::Acknowledge.has_payload());
        assert!(!Operation::RdmaReadRequest.has_payload());
        assert!(Operation::SendOnly.has_payload());
    }
}
